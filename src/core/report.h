// Report layer: the end-to-end LPR pipeline (extract -> filter -> group ->
// classify) applied per cycle, with per-AS breakdowns and longitudinal
// aggregation — the data behind Figs. 6, 10-16 and Tables 1-2.
//
// Every report type implements the Report interface: `to_table` renders the
// fixed-width text form for terminals, `to_json` the machine-readable form
// for external plotting. (This replaces the old report_json.h free-function
// pair; deprecated shims live there for one PR.)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/classify.h"
#include "core/extract.h"
#include "core/filters.h"
#include "dataset/decode.h"
#include "dataset/ip2as.h"
#include "dataset/trace.h"
#include "util/thread_pool.h"

namespace mum::lpr {

// Uniform rendering interface for all report types.
class Report {
 public:
  virtual ~Report() = default;
  virtual void to_table(std::ostream& os) const = 0;
  virtual std::string to_json() const = 0;
};

// Render one ClassCounts as the standard class table (text or CSV) — the
// shared body of every report's table form.
void write_class_table(std::ostream& os, const ClassCounts& counts,
                       bool csv = false);

// Classification of one cycle, with per-AS detail.
struct CycleReport : Report {
  std::uint32_t cycle_id = 0;
  std::string date;
  ExtractStats extract_stats;
  FilterStats filter_stats;
  ClassCounts global;
  std::map<std::uint32_t, ClassCounts> per_as;   // keyed by ASN
  std::map<std::uint32_t, bool> dynamic_as;      // Persistence reinjection tag
  std::vector<IotpRecord> iotps;                 // classified records
  // Ingest health: what the decoder salvaged vs skipped for this cycle's
  // snapshots (empty/clean when the data never went through tolerant decode).
  dataset::DecodeDiagnostics decode;

  // Convenience: counts for one AS (zeroes when absent).
  ClassCounts as_counts(std::uint32_t asn) const;

  // Summary line + global class table + per-AS table.
  void to_table(std::ostream& os) const override;
  std::string to_json() const override { return to_json(false); }
  std::string to_json(bool include_iotps) const;
};

struct PipelineConfig {
  FilterConfig filter;
  ClassifyConfig classify;
};

// Run the full LPR pipeline on one month of data (cycle snapshot + the
// following snapshots used by Persistence). With a pool, the month's
// snapshots are extracted in parallel and classification is sharded; output
// is identical to the serial run.
CycleReport run_pipeline(const dataset::MonthData& month,
                         const dataset::Ip2As& ip2as,
                         const PipelineConfig& config = {},
                         util::ThreadPool* pool = nullptr);

// Same, starting from already-extracted snapshots (lets callers extract once
// and sweep filter configurations, as the Fig. 6 bench does).
CycleReport run_pipeline(const ExtractedSnapshot& cycle,
                         const std::vector<ExtractedSnapshot>& following,
                         const PipelineConfig& config = {},
                         util::ThreadPool* pool = nullptr);

// Longitudinal container: one report per cycle.
struct LongitudinalReport : Report {
  std::vector<CycleReport> cycles;

  // PDF of a class for one AS across cycles (the upper panes of Figs 10-15).
  struct AsSeriesPoint {
    std::uint32_t cycle_id = 0;
    ClassCounts counts;
    bool dynamic_tag = false;
  };
  std::vector<AsSeriesPoint> as_series(std::uint32_t asn) const;

  // One row per cycle: date, IOTP count, global class shares.
  void to_table(std::ostream& os) const override;
  std::string to_json() const override;
};

}  // namespace mum::lpr
