// Report layer: the end-to-end LPR pipeline (extract -> filter -> group ->
// classify) applied per cycle, with per-AS breakdowns and longitudinal
// aggregation — the data behind Figs. 6, 10-16 and Tables 1-2.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/classify.h"
#include "core/extract.h"
#include "core/filters.h"
#include "dataset/ip2as.h"
#include "dataset/trace.h"

namespace mum::lpr {

// Classification of one cycle, with per-AS detail.
struct CycleReport {
  std::uint32_t cycle_id = 0;
  std::string date;
  ExtractStats extract_stats;
  FilterStats filter_stats;
  ClassCounts global;
  std::map<std::uint32_t, ClassCounts> per_as;   // keyed by ASN
  std::map<std::uint32_t, bool> dynamic_as;      // Persistence reinjection tag
  std::vector<IotpRecord> iotps;                 // classified records

  // Convenience: counts for one AS (zeroes when absent).
  ClassCounts as_counts(std::uint32_t asn) const;
};

struct PipelineConfig {
  FilterConfig filter;
  ClassifyConfig classify;
};

// Run the full LPR pipeline on one month of data (cycle snapshot + the
// following snapshots used by Persistence).
CycleReport run_pipeline(const dataset::MonthData& month,
                         const dataset::Ip2As& ip2as,
                         const PipelineConfig& config = {});

// Same, starting from already-extracted snapshots (lets callers extract once
// and sweep filter configurations, as the Fig. 6 bench does).
CycleReport run_pipeline(const ExtractedSnapshot& cycle,
                         const std::vector<ExtractedSnapshot>& following,
                         const PipelineConfig& config = {});

// Longitudinal container: one report per cycle.
struct LongitudinalReport {
  std::vector<CycleReport> cycles;

  // PDF of a class for one AS across cycles (the upper panes of Figs 10-15).
  struct AsSeriesPoint {
    std::uint32_t cycle_id = 0;
    ClassCounts counts;
    bool dynamic_tag = false;
  };
  std::vector<AsSeriesPoint> as_series(std::uint32_t asn) const;
};

}  // namespace mum::lpr
