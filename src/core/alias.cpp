#include "core/alias.h"

#include <algorithm>

#include "util/rng.h"

namespace mum::lpr {

// ----------------------------------------------------------------------
// AddressUnionFind
// ----------------------------------------------------------------------

net::Ipv4Addr AddressUnionFind::root(net::Ipv4Addr a) const {
  auto it = parent_.find(a);
  while (it != parent_.end() && it->second != a) {
    a = it->second;
    it = parent_.find(a);
  }
  return a;
}

void AddressUnionFind::merge(net::Ipv4Addr a, net::Ipv4Addr b) {
  const net::Ipv4Addr ra = root(a);
  const net::Ipv4Addr rb = root(b);
  if (ra == rb) return;
  // Keep the lowest address as the canonical representative so find() is
  // stable regardless of merge order.
  const net::Ipv4Addr lo = std::min(ra, rb);
  const net::Ipv4Addr hi = std::max(ra, rb);
  parent_[hi] = lo;
  parent_.try_emplace(lo, lo);
  // Path-compress the two query points.
  parent_[a] = lo;
  parent_[b] = lo;
}

net::Ipv4Addr AddressUnionFind::find(net::Ipv4Addr a) const {
  return root(a);
}

std::vector<std::set<net::Ipv4Addr>> AddressUnionFind::sets() const {
  std::map<net::Ipv4Addr, std::set<net::Ipv4Addr>> by_root;
  for (const auto& [addr, parent] : parent_) {
    by_root[root(addr)].insert(addr);
  }
  std::vector<std::set<net::Ipv4Addr>> out;
  for (auto& [r, members] : by_root) {
    members.insert(r);
    if (members.size() >= 2) out.push_back(std::move(members));
  }
  return out;
}

// ----------------------------------------------------------------------
// LabelAliasResolver
// ----------------------------------------------------------------------

LabelAliasResolver::LabelAliasResolver(
    const std::vector<LspObservation>& observations) {
  // Scope key: (asn, tunnel exit address, top label). Within one scope the
  // label identifies one router (LDP router-scoped labels, one label per
  // FEC); different addresses under the same key are its interfaces.
  std::map<std::tuple<std::uint32_t, net::Ipv4Addr, std::uint32_t>,
           net::Ipv4Addr>
      first_seen;
  for (const LspObservation& obs : observations) {
    if (obs.lsp.egress_labeled) continue;  // possibly FEC-mixed (extract.h)
    for (const LsrHop& hop : obs.lsp.lsrs) {
      if (hop.labels.empty()) continue;
      const auto key = std::make_tuple(obs.lsp.asn, obs.lsp.egress,
                                       hop.labels.front());
      const auto [it, inserted] = first_seen.try_emplace(key, hop.addr);
      if (!inserted && it->second != hop.addr) {
        uf_.merge(it->second, hop.addr);
      }
    }
  }
}

LabelAliasResolver::LabelAliasResolver(
    const std::vector<LspObservation>& observations,
    const std::vector<dataset::Trace>& traces)
    : LabelAliasResolver(observations) {
  // Subnet-alignment rule: P -> C adjacency inside one AS implies C's /31
  // mate is an interface of P's router.
  for (const dataset::Trace& trace : traces) {
    for (std::size_t i = 0; i + 1 < trace.hops.size(); ++i) {
      const auto& prev = trace.hops[i];
      const auto& cur = trace.hops[i + 1];
      if (prev.anonymous() || cur.anonymous()) continue;
      if (prev.asn == 0 || prev.asn != cur.asn) continue;
      const net::Ipv4Addr mate(cur.addr.value() ^ 1u);
      if (mate == prev.addr) continue;  // nothing to learn
      uf_.merge(prev.addr, mate);
    }
  }
}

net::Ipv4Addr LabelAliasResolver::canonical(net::Ipv4Addr addr) const {
  return uf_.find(addr);
}

// ----------------------------------------------------------------------
// router-level rewriting & evaluation
// ----------------------------------------------------------------------

std::vector<LspObservation> to_router_level(
    const std::vector<LspObservation>& observations,
    const AliasResolver& resolver) {
  std::vector<LspObservation> out;
  out.reserve(observations.size());
  for (const LspObservation& obs : observations) {
    LspObservation rewritten = obs;
    // Canonicalize ONLY the IOTP endpoints. Interior LSR addresses must
    // stay raw: collapsing bundle interfaces to one router address would
    // dedupe physically distinct branches and erase exactly the Parallel
    // Links diversity the classification is supposed to see. The paper's
    // point is coarser *grouping* (<Ingress router; Egress router>), not a
    // coarser view of the paths themselves.
    rewritten.lsp.ingress = resolver.canonical(obs.lsp.ingress);
    rewritten.lsp.egress = resolver.canonical(obs.lsp.egress);
    out.push_back(std::move(rewritten));
  }
  return out;
}

AliasAccuracy evaluate_aliases(
    const std::vector<std::set<net::Ipv4Addr>>& inferred,
    const std::map<net::Ipv4Addr, net::Ipv4Addr>& truth) {
  AliasAccuracy acc;
  for (const auto& members : inferred) {
    // Count unordered pairs with known ground truth.
    std::vector<net::Ipv4Addr> known;
    for (const auto addr : members) {
      if (truth.contains(addr)) known.push_back(addr);
    }
    for (std::size_t i = 0; i < known.size(); ++i) {
      for (std::size_t j = i + 1; j < known.size(); ++j) {
        ++acc.inferred_pairs;
        if (truth.at(known[i]) == truth.at(known[j])) ++acc.correct_pairs;
      }
    }
  }
  return acc;
}

}  // namespace mum::lpr
