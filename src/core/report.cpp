#include "core/report.h"

#include <ostream>

#include "obs/telemetry.h"
#include "util/table.h"

namespace mum::lpr {

ClassCounts CycleReport::as_counts(std::uint32_t asn) const {
  const auto it = per_as.find(asn);
  return it == per_as.end() ? ClassCounts{} : it->second;
}

void write_class_table(std::ostream& os, const ClassCounts& counts,
                       bool csv) {
  util::TextTable table({"class", "IOTPs", "share"});
  const double total = static_cast<double>(counts.total());
  auto row = [&](const char* name, std::uint64_t n) {
    table.add_row({name,
                   util::TextTable::fmt_int(static_cast<std::int64_t>(n)),
                   total > 0 ? util::TextTable::fmt(n / total, 3) : "-"});
  };
  row("Mono-LSP", counts.mono_lsp);
  row("Multi-FEC", counts.multi_fec);
  row("Mono-FEC", counts.mono_fec);
  row("  parallel-links", counts.parallel_links);
  row("  routers-disjoint", counts.routers_disjoint);
  row("Unclassified", counts.unclassified);
  os << (csv ? table.render_csv() : table.render());
}

void CycleReport::to_table(std::ostream& os) const {
  os << "cycle " << cycle_id + 1 << " (" << date << "): "
     << filter_stats.observed << " LSPs observed, "
     << filter_stats.after_persistence << " kept after filtering, "
     << iotps.size() << " IOTPs\n\n";
  write_class_table(os, global);

  os << '\n';
  util::TextTable table({"AS", "IOTPs", "Mono-LSP", "Multi-FEC", "Mono-FEC",
                         "Unclass.", "dynamic"});
  for (const auto& [asn, counts] : per_as) {
    const double t = static_cast<double>(counts.total());
    auto pct = [&](std::uint64_t n) {
      return t > 0 ? util::TextTable::fmt(n / t, 2) : std::string("-");
    };
    const auto dyn = dynamic_as.find(asn);
    table.add_row({"AS" + std::to_string(asn),
                   util::TextTable::fmt_int(static_cast<std::int64_t>(
                       counts.total())),
                   pct(counts.mono_lsp), pct(counts.multi_fec),
                   pct(counts.mono_fec), pct(counts.unclassified),
                   dyn != dynamic_as.end() && dyn->second ? "yes" : ""});
  }
  os << table;
}

void LongitudinalReport::to_table(std::ostream& os) const {
  util::TextTable table({"cycle", "date", "IOTPs", "Mono-LSP", "Multi-FEC",
                         "Mono-FEC", "Unclass."});
  for (const CycleReport& cycle : cycles) {
    const double total = static_cast<double>(cycle.global.total());
    auto pct = [&](std::uint64_t n) {
      return total > 0 ? util::TextTable::fmt(n / total, 2)
                       : std::string("-");
    };
    table.add_row({std::to_string(cycle.cycle_id + 1), cycle.date,
                   util::TextTable::fmt_int(static_cast<std::int64_t>(
                       cycle.global.total())),
                   pct(cycle.global.mono_lsp), pct(cycle.global.multi_fec),
                   pct(cycle.global.mono_fec),
                   pct(cycle.global.unclassified)});
  }
  os << table;
}

CycleReport run_pipeline(const ExtractedSnapshot& cycle,
                         const std::vector<ExtractedSnapshot>& following,
                         const PipelineConfig& config,
                         util::ThreadPool* pool) {
  static obs::Counter& pipeline_runs =
      obs::registry().counter("lpr.pipeline_runs");
  static obs::Counter& traces = obs::registry().counter("lpr.traces");
  static obs::Counter& lsps = obs::registry().counter("lpr.lsps_observed");
  pipeline_runs.inc();
  traces.add(cycle.stats.traces_total);
  lsps.add(cycle.stats.lsps_observed);

  CycleReport report;
  report.cycle_id = cycle.cycle_id;
  report.date = cycle.date;
  report.extract_stats = cycle.stats;

  FilteredCycle filtered = apply_filters(cycle, following, config.filter);
  report.filter_stats = filtered.stats;

  report.iotps = group_iotps(filtered.observations);
  report.global = classify_all(report.iotps, config.classify, pool);

  for (const IotpRecord& rec : report.iotps) {
    report.per_as[rec.key.asn].add(rec);
  }
  for (const std::uint32_t asn : filtered.dynamic_asns) {
    report.dynamic_as[asn] = true;
  }
  return report;
}

CycleReport run_pipeline(const dataset::MonthData& month,
                         const dataset::Ip2As& ip2as,
                         const PipelineConfig& config,
                         util::ThreadPool* pool) {
  // Extract the cycle snapshot and every following snapshot of the month —
  // each snapshot extracts independently, so they fan out over the pool.
  std::vector<ExtractedSnapshot> extracted(month.snapshots.size());
  util::parallel_for(pool, month.snapshots.size(), [&](std::size_t i) {
    extracted[i] = extract_lsps(month.snapshots[i], ip2as);
  });
  const ExtractedSnapshot cycle = std::move(extracted.front());
  std::vector<ExtractedSnapshot> following(
      std::make_move_iterator(extracted.begin() + 1),
      std::make_move_iterator(extracted.end()));
  return run_pipeline(cycle, following, config, pool);
}

std::vector<LongitudinalReport::AsSeriesPoint>
LongitudinalReport::as_series(std::uint32_t asn) const {
  std::vector<AsSeriesPoint> out;
  out.reserve(cycles.size());
  for (const CycleReport& report : cycles) {
    AsSeriesPoint point;
    point.cycle_id = report.cycle_id;
    point.counts = report.as_counts(asn);
    const auto it = report.dynamic_as.find(asn);
    point.dynamic_tag = it != report.dynamic_as.end() && it->second;
    out.push_back(point);
  }
  return out;
}

}  // namespace mum::lpr
