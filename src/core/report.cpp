#include "core/report.h"

namespace mum::lpr {

ClassCounts CycleReport::as_counts(std::uint32_t asn) const {
  const auto it = per_as.find(asn);
  return it == per_as.end() ? ClassCounts{} : it->second;
}

CycleReport run_pipeline(const ExtractedSnapshot& cycle,
                         const std::vector<ExtractedSnapshot>& following,
                         const PipelineConfig& config) {
  CycleReport report;
  report.cycle_id = cycle.cycle_id;
  report.date = cycle.date;
  report.extract_stats = cycle.stats;

  FilteredCycle filtered = apply_filters(cycle, following, config.filter);
  report.filter_stats = filtered.stats;

  report.iotps = group_iotps(filtered.observations);
  report.global = classify_all(report.iotps, config.classify);

  for (const IotpRecord& rec : report.iotps) {
    report.per_as[rec.key.asn].add(rec);
  }
  for (const std::uint32_t asn : filtered.dynamic_asns) {
    report.dynamic_as[asn] = true;
  }
  return report;
}

CycleReport run_pipeline(const dataset::MonthData& month,
                         const dataset::Ip2As& ip2as,
                         const PipelineConfig& config) {
  // Extract the cycle snapshot and every following snapshot of the month.
  const ExtractedSnapshot cycle = extract_lsps(month.cycle(), ip2as);
  std::vector<ExtractedSnapshot> following;
  following.reserve(month.snapshots.size() - 1);
  for (std::size_t i = 1; i < month.snapshots.size(); ++i) {
    following.push_back(extract_lsps(month.snapshots[i], ip2as));
  }
  return run_pipeline(cycle, following, config);
}

std::vector<LongitudinalReport::AsSeriesPoint>
LongitudinalReport::as_series(std::uint32_t asn) const {
  std::vector<AsSeriesPoint> out;
  out.reserve(cycles.size());
  for (const CycleReport& report : cycles) {
    AsSeriesPoint point;
    point.cycle_id = report.cycle_id;
    point.counts = report.as_counts(asn);
    const auto it = report.dynamic_as.find(asn);
    point.dynamic_tag = it != report.dynamic_as.end() && it->second;
    out.push_back(point);
  }
  return out;
}

}  // namespace mum::lpr
