#include "core/extract.h"

#include <unordered_set>

namespace mum::lpr {

namespace {

// Majority ASN of the labeled run; 0 when hops map to no AS at all.
std::uint32_t run_asn(const std::vector<dataset::TraceHop>& hops,
                      std::size_t first, std::size_t last) {
  std::unordered_map<std::uint32_t, int> votes;
  for (std::size_t i = first; i <= last; ++i) {
    if (hops[i].asn != dataset::kUnknownAsn) ++votes[hops[i].asn];
  }
  std::uint32_t best = 0;
  int best_votes = 0;
  for (const auto& [asn, n] : votes) {
    if (n > best_votes) {
      best = asn;
      best_votes = n;
    }
  }
  return best;
}

// True when every mapped hop of the run has ASN `asn`.
bool run_is_intra_as(const std::vector<dataset::TraceHop>& hops,
                     std::size_t first, std::size_t last, std::uint32_t asn) {
  for (std::size_t i = first; i <= last; ++i) {
    if (hops[i].asn != dataset::kUnknownAsn && hops[i].asn != asn) {
      return false;
    }
  }
  return true;
}

}  // namespace

ExtractStats& ExtractStats::merge(const ExtractStats& other) noexcept {
  traces_total += other.traces_total;
  traces_with_explicit_tunnel += other.traces_with_explicit_tunnel;
  lsps_observed += other.lsps_observed;
  lsps_incomplete += other.lsps_incomplete;
  mpls_ips += other.mpls_ips;
  non_mpls_ips += other.non_mpls_ips;
  return *this;
}

ExtractedSnapshot extract_lsps(const dataset::Snapshot& snapshot,
                               const dataset::Ip2As& ip2as) {
  ExtractedSnapshot out;
  out.cycle_id = snapshot.cycle_id;
  out.sub_index = snapshot.sub_index;
  out.date = snapshot.date;

  std::unordered_set<net::Ipv4Addr> mpls_addrs;
  std::unordered_set<net::Ipv4Addr> all_addrs;

  for (const dataset::Trace& trace : snapshot.traces) {
    ++out.stats.traces_total;
    bool saw_tunnel = false;

    const auto& hops = trace.hops;
    for (const auto& hop : hops) {
      if (!hop.anonymous()) all_addrs.insert(hop.addr);
    }

    std::size_t i = 0;
    while (i < hops.size()) {
      if (!hops[i].has_labels()) {
        ++i;
        continue;
      }
      // Maximal labeled run [first, last]. Anonymous hops break the run but
      // make the LSP incomplete (an LSR failed to reply).
      const std::size_t first = i;
      std::size_t last = i;
      bool run_has_anonymous = false;
      while (last + 1 < hops.size()) {
        if (hops[last + 1].has_labels()) {
          ++last;
        } else if (hops[last + 1].anonymous() && last + 2 < hops.size() &&
                   hops[last + 2].has_labels()) {
          // '*' wedged between labeled hops: the run continues but is
          // incomplete in the traceroute sense.
          run_has_anonymous = true;
          last += 2;
        } else {
          break;
        }
      }
      i = last + 1;

      saw_tunnel = true;
      ++out.stats.lsps_observed;
      for (std::size_t k = first; k <= last; ++k) {
        if (!hops[k].anonymous()) mpls_addrs.insert(hops[k].addr);
      }

      // Completeness: need both endpoint hops, responding, and no '*' inside.
      const bool has_ingress = first > 0 && !hops[first - 1].anonymous();
      const bool has_exit = last + 1 < hops.size() &&
                            !hops[last + 1].anonymous();
      if (run_has_anonymous || !has_ingress || !has_exit) {
        ++out.stats.lsps_incomplete;
        continue;
      }

      const std::uint32_t asn = run_asn(hops, first, last);
      LspObservation obs;
      obs.dst_asn = trace.dst_asn != 0 ? trace.dst_asn
                                       : ip2as.lookup(trace.dst);
      obs.monitor_id = trace.monitor_id;
      obs.lsp.ingress = hops[first - 1].addr;
      // Mark multi-AS runs with asn=0 so the IntraAS filter rejects them.
      obs.lsp.asn = run_is_intra_as(hops, first, last, asn) ? asn : 0;

      // Exit point: the hop after the run when it still belongs to the
      // tunnel's AS (PHP), else the last labeled hop (non-PHP egress).
      const dataset::TraceHop& after = hops[last + 1];
      if (after.asn == obs.lsp.asn && obs.lsp.asn != 0) {
        obs.lsp.egress = after.addr;
        obs.lsp.egress_labeled = false;
      } else {
        obs.lsp.egress = hops[last].addr;
        obs.lsp.egress_labeled = true;
      }

      obs.lsp.lsrs.reserve(last - first + 1);
      for (std::size_t k = first; k <= last; ++k) {
        if (hops[k].anonymous()) continue;
        LsrHop lsr;
        lsr.addr = hops[k].addr;
        lsr.labels = hops[k].labels.labels();
        obs.lsp.lsrs.push_back(std::move(lsr));
      }
      out.observations.push_back(std::move(obs));
    }

    if (saw_tunnel) ++out.stats.traces_with_explicit_tunnel;
  }

  out.stats.mpls_ips = mpls_addrs.size();
  std::uint64_t non_mpls = 0;
  for (const auto& addr : all_addrs) {
    if (!mpls_addrs.contains(addr)) ++non_mpls;
  }
  out.stats.non_mpls_ips = non_mpls;
  return out;
}

std::unordered_map<std::uint32_t, AsIpCensus> census_by_as(
    const dataset::Snapshot& snapshot) {
  std::unordered_map<std::uint32_t, std::unordered_set<net::Ipv4Addr>> mpls;
  std::unordered_map<std::uint32_t, std::unordered_set<net::Ipv4Addr>> plain;
  for (const dataset::Trace& trace : snapshot.traces) {
    for (const auto& hop : trace.hops) {
      if (hop.anonymous() || hop.asn == dataset::kUnknownAsn) continue;
      if (hop.has_labels()) {
        mpls[hop.asn].insert(hop.addr);
      } else {
        plain[hop.asn].insert(hop.addr);
      }
    }
  }
  std::unordered_map<std::uint32_t, AsIpCensus> out;
  for (const auto& [asn, addrs] : mpls) out[asn].mpls_ips = addrs.size();
  for (const auto& [asn, addrs] : plain) {
    auto& census = out[asn];
    // Count an address as non-MPLS only if it never appeared labeled.
    const auto it = mpls.find(asn);
    for (const auto& addr : addrs) {
      if (it == mpls.end() || !it->second.contains(addr)) {
        ++census.non_mpls_ips;
      }
    }
  }
  return out;
}

}  // namespace mum::lpr
