#include "core/extract.h"

#include <unordered_set>
#include <utility>

namespace mum::lpr {

namespace {

// The extraction walk is templated over a per-trace adaptor so the heap
// Trace and the columnar TraceView run the identical algorithm (identical
// control flow ⇒ identical observations and stats, which the oracle tests
// assert). An adaptor exposes:
//
//   hop_count(), anonymous(k), has_labels(k), addr(k), asn(k), labels(k),
//   monitor_id(), dst(), dst_asn()
struct AosTraceRef {
  const dataset::Trace& t;

  std::size_t hop_count() const { return t.hops.size(); }
  bool anonymous(std::size_t k) const { return t.hops[k].anonymous(); }
  bool has_labels(std::size_t k) const { return t.hops[k].has_labels(); }
  net::Ipv4Addr addr(std::size_t k) const { return t.hops[k].addr; }
  std::uint32_t asn(std::size_t k) const { return t.hops[k].asn; }
  std::vector<std::uint32_t> labels(std::size_t k) const {
    return t.hops[k].labels.labels();
  }
  std::uint32_t monitor_id() const { return t.monitor_id; }
  net::Ipv4Addr dst() const { return t.dst; }
  std::uint32_t dst_asn() const { return t.dst_asn; }
};

struct BatchTraceRef {
  dataset::TraceView v;

  std::size_t hop_count() const { return v.hop_count(); }
  bool anonymous(std::size_t k) const { return v.hop(k).anonymous(); }
  bool has_labels(std::size_t k) const { return v.hop(k).has_labels(); }
  net::Ipv4Addr addr(std::size_t k) const { return v.hop(k).addr(); }
  std::uint32_t asn(std::size_t k) const { return v.hop(k).asn(); }
  std::vector<std::uint32_t> labels(std::size_t k) const {
    return v.hop(k).labels();
  }
  std::uint32_t monitor_id() const { return v.monitor_id(); }
  net::Ipv4Addr dst() const { return v.dst(); }
  std::uint32_t dst_asn() const { return v.dst_asn(); }
};

// Majority ASN of the labeled run; 0 when hops map to no AS at all.
template <class T>
std::uint32_t run_asn(const T& hops, std::size_t first, std::size_t last) {
  std::unordered_map<std::uint32_t, int> votes;
  for (std::size_t i = first; i <= last; ++i) {
    if (hops.asn(i) != dataset::kUnknownAsn) ++votes[hops.asn(i)];
  }
  std::uint32_t best = 0;
  int best_votes = 0;
  for (const auto& [asn, n] : votes) {
    if (n > best_votes) {
      best = asn;
      best_votes = n;
    }
  }
  return best;
}

// True when every mapped hop of the run has ASN `asn`.
template <class T>
bool run_is_intra_as(const T& hops, std::size_t first, std::size_t last,
                     std::uint32_t asn) {
  for (std::size_t i = first; i <= last; ++i) {
    if (hops.asn(i) != dataset::kUnknownAsn && hops.asn(i) != asn) {
      return false;
    }
  }
  return true;
}

template <class T>
void extract_from_trace(const T& hops, const dataset::Ip2As& ip2as,
                        ExtractedSnapshot& out,
                        std::unordered_set<net::Ipv4Addr>& mpls_addrs,
                        std::unordered_set<net::Ipv4Addr>& all_addrs) {
  ++out.stats.traces_total;
  bool saw_tunnel = false;

  const std::size_t n = hops.hop_count();
  for (std::size_t k = 0; k < n; ++k) {
    if (!hops.anonymous(k)) all_addrs.insert(hops.addr(k));
  }

  std::size_t i = 0;
  while (i < n) {
    if (!hops.has_labels(i)) {
      ++i;
      continue;
    }
    // Maximal labeled run [first, last]. Anonymous hops break the run but
    // make the LSP incomplete (an LSR failed to reply).
    const std::size_t first = i;
    std::size_t last = i;
    bool run_has_anonymous = false;
    while (last + 1 < n) {
      if (hops.has_labels(last + 1)) {
        ++last;
      } else if (hops.anonymous(last + 1) && last + 2 < n &&
                 hops.has_labels(last + 2)) {
        // '*' wedged between labeled hops: the run continues but is
        // incomplete in the traceroute sense.
        run_has_anonymous = true;
        last += 2;
      } else {
        break;
      }
    }
    i = last + 1;

    saw_tunnel = true;
    ++out.stats.lsps_observed;
    for (std::size_t k = first; k <= last; ++k) {
      if (!hops.anonymous(k)) mpls_addrs.insert(hops.addr(k));
    }

    // Completeness: need both endpoint hops, responding, and no '*' inside.
    const bool has_ingress = first > 0 && !hops.anonymous(first - 1);
    const bool has_exit = last + 1 < n && !hops.anonymous(last + 1);
    if (run_has_anonymous || !has_ingress || !has_exit) {
      ++out.stats.lsps_incomplete;
      continue;
    }

    const std::uint32_t asn = run_asn(hops, first, last);
    LspObservation obs;
    obs.dst_asn = hops.dst_asn() != 0 ? hops.dst_asn()
                                      : ip2as.lookup(hops.dst());
    obs.monitor_id = hops.monitor_id();
    obs.lsp.ingress = hops.addr(first - 1);
    // Mark multi-AS runs with asn=0 so the IntraAS filter rejects them.
    obs.lsp.asn = run_is_intra_as(hops, first, last, asn) ? asn : 0;

    // Exit point: the hop after the run when it still belongs to the
    // tunnel's AS (PHP), else the last labeled hop (non-PHP egress).
    if (hops.asn(last + 1) == obs.lsp.asn && obs.lsp.asn != 0) {
      obs.lsp.egress = hops.addr(last + 1);
      obs.lsp.egress_labeled = false;
    } else {
      obs.lsp.egress = hops.addr(last);
      obs.lsp.egress_labeled = true;
    }

    obs.lsp.lsrs.reserve(last - first + 1);
    for (std::size_t k = first; k <= last; ++k) {
      if (hops.anonymous(k)) continue;
      LsrHop lsr;
      lsr.addr = hops.addr(k);
      lsr.labels = hops.labels(k);
      obs.lsp.lsrs.push_back(std::move(lsr));
    }
    out.observations.push_back(std::move(obs));
  }

  if (saw_tunnel) ++out.stats.traces_with_explicit_tunnel;
}

template <class T>
void census_from_trace(
    const T& hops,
    std::unordered_map<std::uint32_t, std::unordered_set<net::Ipv4Addr>>& mpls,
    std::unordered_map<std::uint32_t, std::unordered_set<net::Ipv4Addr>>&
        plain) {
  const std::size_t n = hops.hop_count();
  for (std::size_t k = 0; k < n; ++k) {
    if (hops.anonymous(k) || hops.asn(k) == dataset::kUnknownAsn) continue;
    if (hops.has_labels(k)) {
      mpls[hops.asn(k)].insert(hops.addr(k));
    } else {
      plain[hops.asn(k)].insert(hops.addr(k));
    }
  }
}

std::unordered_map<std::uint32_t, AsIpCensus> census_finish(
    const std::unordered_map<std::uint32_t,
                             std::unordered_set<net::Ipv4Addr>>& mpls,
    const std::unordered_map<std::uint32_t,
                             std::unordered_set<net::Ipv4Addr>>& plain) {
  std::unordered_map<std::uint32_t, AsIpCensus> out;
  for (const auto& [asn, addrs] : mpls) out[asn].mpls_ips = addrs.size();
  for (const auto& [asn, addrs] : plain) {
    auto& census = out[asn];
    // Count an address as non-MPLS only if it never appeared labeled.
    const auto it = mpls.find(asn);
    for (const auto& addr : addrs) {
      if (it == mpls.end() || !it->second.contains(addr)) {
        ++census.non_mpls_ips;
      }
    }
  }
  return out;
}

void extract_finish(ExtractedSnapshot& out,
                    const std::unordered_set<net::Ipv4Addr>& mpls_addrs,
                    const std::unordered_set<net::Ipv4Addr>& all_addrs) {
  out.stats.mpls_ips = mpls_addrs.size();
  std::uint64_t non_mpls = 0;
  for (const auto& addr : all_addrs) {
    if (!mpls_addrs.contains(addr)) ++non_mpls;
  }
  out.stats.non_mpls_ips = non_mpls;
}

}  // namespace

ExtractStats& ExtractStats::merge(const ExtractStats& other) noexcept {
  traces_total += other.traces_total;
  traces_with_explicit_tunnel += other.traces_with_explicit_tunnel;
  lsps_observed += other.lsps_observed;
  lsps_incomplete += other.lsps_incomplete;
  mpls_ips += other.mpls_ips;
  non_mpls_ips += other.non_mpls_ips;
  return *this;
}

ExtractedSnapshot extract_lsps(const dataset::Snapshot& snapshot,
                               const dataset::Ip2As& ip2as) {
  ExtractedSnapshot out;
  out.cycle_id = snapshot.cycle_id;
  out.sub_index = snapshot.sub_index;
  out.date = snapshot.date;

  std::unordered_set<net::Ipv4Addr> mpls_addrs;
  std::unordered_set<net::Ipv4Addr> all_addrs;
  for (const dataset::Trace& trace : snapshot.traces) {
    extract_from_trace(AosTraceRef{trace}, ip2as, out, mpls_addrs, all_addrs);
  }
  extract_finish(out, mpls_addrs, all_addrs);
  return out;
}

ExtractedSnapshot extract_lsps(const dataset::SnapshotBatch& snapshot,
                               const dataset::Ip2As& ip2as) {
  ExtractedSnapshot out;
  out.cycle_id = snapshot.cycle_id;
  out.sub_index = snapshot.sub_index;
  out.date = snapshot.date;

  std::unordered_set<net::Ipv4Addr> mpls_addrs;
  std::unordered_set<net::Ipv4Addr> all_addrs;
  const std::size_t n = snapshot.traces.trace_count();
  for (std::size_t i = 0; i < n; ++i) {
    extract_from_trace(BatchTraceRef{snapshot.traces.view(i)}, ip2as, out,
                       mpls_addrs, all_addrs);
  }
  extract_finish(out, mpls_addrs, all_addrs);
  return out;
}

std::unordered_map<std::uint32_t, AsIpCensus> census_by_as(
    const dataset::Snapshot& snapshot) {
  std::unordered_map<std::uint32_t, std::unordered_set<net::Ipv4Addr>> mpls;
  std::unordered_map<std::uint32_t, std::unordered_set<net::Ipv4Addr>> plain;
  for (const dataset::Trace& trace : snapshot.traces) {
    census_from_trace(AosTraceRef{trace}, mpls, plain);
  }
  return census_finish(mpls, plain);
}

std::unordered_map<std::uint32_t, AsIpCensus> census_by_as(
    const dataset::SnapshotBatch& snapshot) {
  std::unordered_map<std::uint32_t, std::unordered_set<net::Ipv4Addr>> mpls;
  std::unordered_map<std::uint32_t, std::unordered_set<net::Ipv4Addr>> plain;
  const std::size_t n = snapshot.traces.trace_count();
  for (std::size_t i = 0; i < n; ++i) {
    census_from_trace(BatchTraceRef{snapshot.traces.view(i)}, mpls, plain);
  }
  return census_finish(mpls, plain);
}

}  // namespace mum::lpr
