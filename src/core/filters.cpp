#include "core/filters.h"

#include <algorithm>

namespace mum::lpr {

std::unordered_set<std::uint64_t> lsp_content_set(
    const ExtractedSnapshot& snapshot) {
  std::unordered_set<std::uint64_t> out;
  out.reserve(snapshot.observations.size());
  for (const LspObservation& obs : snapshot.observations) {
    out.insert(obs.lsp.content_hash());
  }
  return out;
}

FilteredCycle apply_filters(const ExtractedSnapshot& cycle,
                            const std::vector<ExtractedSnapshot>& following,
                            const FilterConfig& config) {
  FilteredCycle out;
  out.cycle_id = cycle.cycle_id;
  out.date = cycle.date;
  out.stats.observed = cycle.stats.lsps_observed;
  out.stats.complete = cycle.observations.size();

  // --- IntraAS: extraction marked multi-AS runs with asn == 0. -----------
  std::vector<LspObservation> kept;
  kept.reserve(cycle.observations.size());
  for (const LspObservation& obs : cycle.observations) {
    if (config.enable_intra_as && obs.lsp.asn == 0) continue;
    kept.push_back(obs);
  }
  out.stats.after_intra_as = kept.size();

  // --- TargetAS: destination must sit outside the tunnel's AS. -----------
  if (config.enable_target_as) {
    std::erase_if(kept, [](const LspObservation& obs) {
      return obs.dst_asn == obs.lsp.asn;
    });
  }
  out.stats.after_target_as = kept.size();

  // --- TransitDiversity: IOTP must serve >= 2 destination ASes. ----------
  if (config.enable_transit_diversity) {
    std::unordered_map<IotpKey, std::set<std::uint32_t>, IotpKeyHash>
        dst_sets;
    for (const LspObservation& obs : kept) {
      dst_sets[{obs.lsp.asn, obs.lsp.ingress, obs.lsp.egress}].insert(
          obs.dst_asn);
    }
    std::erase_if(kept, [&](const LspObservation& obs) {
      return dst_sets
                 .at({obs.lsp.asn, obs.lsp.ingress, obs.lsp.egress})
                 .size() < 2;
    });
  }
  out.stats.after_transit_diversity = kept.size();

  // --- Persistence: reappear within the next j snapshots of the month. ---
  if (config.enable_persistence) {
    std::unordered_set<std::uint64_t> persistent;
    const int j = std::min<int>(config.persistence_j,
                                static_cast<int>(following.size()));
    for (int s = 0; s < j; ++s) {
      const auto set = lsp_content_set(following[static_cast<std::size_t>(s)]);
      persistent.insert(set.begin(), set.end());
    }

    // Count per-AS attrition to detect dynamic ASes before erasing.
    std::unordered_map<std::uint32_t, std::uint64_t> total_per_as;
    std::unordered_map<std::uint32_t, std::uint64_t> kept_per_as;
    for (const LspObservation& obs : kept) {
      ++total_per_as[obs.lsp.asn];
      if (persistent.contains(obs.lsp.content_hash())) {
        ++kept_per_as[obs.lsp.asn];
      }
    }
    for (const auto& [asn, total] : total_per_as) {
      const std::uint64_t still = kept_per_as[asn];
      const double surviving =
          static_cast<double>(still) / static_cast<double>(total);
      // Reinjection applies when the filter deletes (essentially) the whole
      // set: churn that fast is label dynamics, not routing noise.
      if (surviving <= 1.0 - config.dynamic_threshold) {
        out.dynamic_asns.insert(asn);
      }
    }
    std::erase_if(kept, [&](const LspObservation& obs) {
      if (out.dynamic_asns.contains(obs.lsp.asn)) return false;  // reinjected
      return !persistent.contains(obs.lsp.content_hash());
    });
  }
  out.stats.after_persistence = kept.size();

  out.observations = std::move(kept);
  return out;
}

std::vector<IotpRecord> group_iotps(
    const std::vector<LspObservation>& observations) {
  std::unordered_map<IotpKey, IotpRecord, IotpKeyHash> groups;
  for (const LspObservation& obs : observations) {
    const IotpKey key{obs.lsp.asn, obs.lsp.ingress, obs.lsp.egress};
    IotpRecord& rec = groups[key];
    rec.key = key;
    rec.dst_asns.push_back(obs.dst_asn);
    if (std::find(rec.variants.begin(), rec.variants.end(), obs.lsp) ==
        rec.variants.end()) {
      rec.variants.push_back(obs.lsp);
    }
  }
  std::vector<IotpRecord> out;
  out.reserve(groups.size());
  for (auto& [key, rec] : groups) {
    // Normalize the appended destination list (sorted + deduplicated).
    std::sort(rec.dst_asns.begin(), rec.dst_asns.end());
    rec.dst_asns.erase(
        std::unique(rec.dst_asns.begin(), rec.dst_asns.end()),
        rec.dst_asns.end());
    out.push_back(std::move(rec));
  }
  // Deterministic order for reproducible reports.
  std::sort(out.begin(), out.end(), [](const IotpRecord& a,
                                       const IotpRecord& b) {
    return a.key < b.key;
  });
  return out;
}

}  // namespace mum::lpr
