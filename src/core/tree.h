// LSP-tree analysis — the paper's Sec.-5 extension: index LSPs only
// through their Egress LER instead of the <Ingress, Egress> pair.
//
// LDP builds one LSP-*tree* per FEC: every router binds a single label for
// the egress's loopback and advertises it to ALL upstream neighbours. So
// across a whole egress-rooted tree (any ingress), a given router must show
// one label. RSVP-TE breaks that: labels are per-LSP, so a router inside a
// TE mesh toward one egress shows several labels.
//
// Indexing by egress classifies strictly more LSPs than IOTP indexing —
// branches that never share an ingress still join the same tree — which is
// exactly the gain the paper anticipates ("more LSPs will be classified ...
// because they will be indexed only through the Egress LER"). Because of
// ECMP the structure is really a DAG, so we report per-router in-degrees
// rather than assuming a tree.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/model.h"

namespace mum::lpr {

// Identity of one egress-rooted tree.
struct TreeKey {
  std::uint32_t asn = 0;
  net::Ipv4Addr egress;

  friend bool operator==(const TreeKey&, const TreeKey&) = default;
  friend auto operator<=>(const TreeKey&, const TreeKey&) = default;
};

enum class TreeClass : std::uint8_t {
  kSingleBranch,   // one LSP only — nothing to compare
  kLdpConsistent,  // every router shows one label: an LDP LSP-tree
  kMultiFec,       // >= 2 labels at some router: RSVP-TE toward this egress
};

const char* to_cstring(TreeClass c) noexcept;

struct EgressTree {
  TreeKey key;
  std::vector<Lsp> branches;               // distinct member LSPs
  std::set<net::Ipv4Addr> ingresses;       // distinct entry points
  std::set<std::uint32_t> dst_asns;
  TreeClass tree_class = TreeClass::kSingleBranch;
  // Max number of distinct labels observed at one router address.
  int max_labels_per_router = 0;
  // Max number of distinct upstream addresses feeding one router address
  // (the DAG in-degree the paper says to expect instead of a tree).
  int max_in_degree = 0;
};

// Group observations into egress-rooted trees and classify each.
std::vector<EgressTree> build_egress_trees(
    const std::vector<LspObservation>& observations);

struct TreeStats {
  std::uint64_t trees = 0;
  std::uint64_t single_branch = 0;
  std::uint64_t ldp_consistent = 0;
  std::uint64_t multi_fec = 0;
  // LSPs classified under tree indexing vs IOTP indexing (tree indexing
  // never classifies fewer — the Sec. 5 claim, asserted in tests).
  std::uint64_t branches_total = 0;
};

TreeStats summarize(const std::vector<EgressTree>& trees);

}  // namespace mum::lpr
