// IOTP-level metric distributions (paper Sec. 4.3): length, width, symmetry,
// adapted from Augustin et al.'s load-balanced-path metrics.
#pragma once

#include <vector>

#include "core/model.h"
#include "util/stats.h"

namespace mum::lpr {

// Length distribution (Fig. 7): intermediate LSRs of the longest branch.
util::Histogram length_distribution(const std::vector<IotpRecord>& records);

// Width distribution (Fig. 8(a)): number of branches; optionally restricted
// to one class (Fig. 8(b)).
util::Histogram width_distribution(const std::vector<IotpRecord>& records);
util::Histogram width_distribution(const std::vector<IotpRecord>& records,
                                   TunnelClass only);

// Symmetry distribution (Fig. 9): longest minus shortest branch length.
util::Histogram symmetry_distribution(const std::vector<IotpRecord>& records);
util::Histogram symmetry_distribution(const std::vector<IotpRecord>& records,
                                      TunnelClass only);

// Guarded ratio: numerator / denominator, or exactly 0.0 when the
// denominator is zero. Every report-facing share goes through this so an
// empty cycle (zero complete LSPs after filtering) emits explicit zeros
// instead of NaN — tolerant-mode JSON must stay valid no matter how much
// data the decoder had to drop.
double safe_ratio(std::uint64_t numerator, std::uint64_t denominator) noexcept;

// Share of balanced IOTPs (symmetry == 0) within one class.
double balanced_share(const std::vector<IotpRecord>& records,
                      TunnelClass only);

}  // namespace mum::lpr
