// Explicit-tunnel extraction (the "Filtering and formatting" front half of
// Fig. 3, up to and including the Incomplete-LSP rejection).
//
// An explicit tunnel is a maximal run of hops whose ICMP replies quote an
// RFC 4950 label stack. For each run we derive one LSP:
//
//   * Ingress LER  = the hop immediately before the run (the router that
//     pushed the stack replies before labels appear).
//   * Egress LER   = the hop immediately after the run when it maps to the
//     same AS (PHP popped the stack one hop early — the usual case), else the
//     last labeled hop itself (no PHP: the egress quotes its own label, and
//     the next hop already belongs to the neighbouring AS).
//
// A run is *incomplete* — and dropped, counted — when the run or either
// endpoint hop is anonymous, or when the run touches the ends of the trace.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/model.h"
#include "dataset/ip2as.h"
#include "dataset/trace.h"
#include "dataset/trace_batch.h"

namespace mum::lpr {

struct ExtractStats {
  std::uint64_t traces_total = 0;
  std::uint64_t traces_with_explicit_tunnel = 0;
  std::uint64_t lsps_observed = 0;    // complete + incomplete
  std::uint64_t lsps_incomplete = 0;  // dropped by the Incomplete filter
  // Unique responding addresses, split by MPLS involvement (Fig. 5(b)):
  // an address is "MPLS" when it ever appears inside a labeled run.
  std::uint64_t mpls_ips = 0;
  std::uint64_t non_mpls_ips = 0;

  // Deterministic accumulation across workers / snapshots: every counter is
  // summed. Note the ip counters are unique *within* each operand only —
  // merged totals over shards that may share addresses are upper bounds.
  ExtractStats& merge(const ExtractStats& other) noexcept;
};

struct ExtractedSnapshot {
  std::uint32_t cycle_id = 0;
  std::uint32_t sub_index = 0;
  std::string date;
  std::vector<LspObservation> observations;
  ExtractStats stats;
};

// Extract all complete explicit LSPs from an annotated snapshot. Traces must
// have been annotated with Ip2As first (hop ASNs are consumed here); the
// `ip2as` reference is used for endpoint resolution of unmapped hops.
ExtractedSnapshot extract_lsps(const dataset::Snapshot& snapshot,
                               const dataset::Ip2As& ip2as);
// Batch form: identical algorithm over TraceView/HopView spans — no Trace
// materialization. Produces the same observations and stats as running the
// heap overload on snapshot.to_snapshot().
ExtractedSnapshot extract_lsps(const dataset::SnapshotBatch& snapshot,
                               const dataset::Ip2As& ip2as);

// Per-AS unique-address census over one snapshot (Table 2 rows): for each
// ASN, how many distinct responding addresses were seen inside labeled runs
// (MPLS) vs outside (non-MPLS).
struct AsIpCensus {
  std::uint64_t mpls_ips = 0;
  std::uint64_t non_mpls_ips = 0;
};
std::unordered_map<std::uint32_t, AsIpCensus> census_by_as(
    const dataset::Snapshot& snapshot);
std::unordered_map<std::uint32_t, AsIpCensus> census_by_as(
    const dataset::SnapshotBatch& snapshot);

}  // namespace mum::lpr
