#include "gen/internet.h"

#include <algorithm>
#include <cmath>

namespace mum::gen {

namespace {

// Address-block layout, relative to the block size S (see DESIGN.md):
//   [0, S/4)        router loopbacks
//   [S/4, 3S/4)     intra-AS link /31s
//   [3S/4, 7S/8)    inter-AS entry interfaces
//   [7S/8, S)       probed destination /24s
// Modelled (transit) ASes own /15 blocks, stubs /16 — transit networks
// announce more address space, which feeds the TargetAS filter the way the
// real Ark target list does.
std::uint64_t entry_region(const net::Ipv4Prefix& block) {
  return block.size() * 3 / 4;
}
std::uint64_t dest_region(const net::Ipv4Prefix& block) {
  return block.size() * 7 / 8;
}
int dest_slots(const net::Ipv4Prefix& block) {
  return static_cast<int>(block.size() / 8 / 256);
}

double to01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t dst24_hash(net::Ipv4Addr dst) {
  return util::mix64(dst.value() >> 8);
}

}  // namespace

// ---------------------------------------------------------------------
// ModeledAs
// ---------------------------------------------------------------------

topo::RouterId ModeledAs::border_for(std::uint32_t neighbor,
                                     std::uint64_t dst_hash) const {
  const auto& borders = borders_toward.at(neighbor);
  return borders[static_cast<std::size_t>(dst_hash % borders.size())];
}

net::Ipv4Addr ModeledAs::entry_iface_for(std::uint32_t neighbor,
                                         std::uint64_t dst_hash) const {
  const auto& ifaces = entry_ifaces_from.at(neighbor);
  return ifaces[static_cast<std::size_t>(dst_hash % ifaces.size())];
}

// ---------------------------------------------------------------------
// MonthContext
// ---------------------------------------------------------------------

const probe::AsDataPlane* MonthContext::plane_of(std::uint32_t asn) const {
  const auto it = planes_.find(asn);
  return it == planes_.end() ? nullptr : &it->second->plane;
}

namespace {

// Variant-0 route on an arbitrary IGP state (used to re-route TE LSPs after
// failures; RsvpTePlane::compute_route is bound to the base state).
std::vector<topo::LinkId> route_on(const igp::IgpState& igp,
                                   topo::RouterId ingress,
                                   topo::RouterId egress,
                                   std::size_t router_count) {
  std::vector<topo::LinkId> route;
  topo::RouterId at = ingress;
  for (std::size_t guard = router_count + 4; at != egress; --guard) {
    if (guard == 0) return {};
    const auto& nhs = igp.rib(at).nexthops(egress);
    if (nhs.empty()) return {};
    route.push_back(nhs.front().link);
    at = nhs.front().neighbor;
  }
  return route;
}

}  // namespace

// Structural-change predicates for cycle evolution: which profile fields
// force a rebuild of which plane. Everything else is an observation scalar
// updated in place (apply_profile_scalars).
bool ldp_structural_changed(const ProfileSnapshot& a,
                            const ProfileSnapshot& b) {
  return a.mpls_enabled != b.mpls_enabled || a.ldp != b.ldp ||
         a.php != b.php || a.fec_all_loopbacks != b.fec_all_loopbacks;
}

bool te_structural_changed(const ProfileSnapshot& a,
                           const ProfileSnapshot& b) {
  return a.te_pair_share != b.te_pair_share ||
         a.te_lsps_min != b.te_lsps_min || a.te_lsps_max != b.te_lsps_max ||
         a.te_diverse_route_prob != b.te_diverse_route_prob ||
         a.te_frr != b.te_frr || a.ldp_over_te_share != b.ldp_over_te_share;
}

void MonthContext::restore_pristine() {
  for (auto& [asn, planes] : planes_) {
    for (std::size_t i = 0; i < planes->pools.size(); ++i) {
      planes->pools[i].restore(planes->pools_pristine[i]);
    }
    if (planes->rsvp) planes->rsvp->restore_pristine();
    planes->igp_now.reset();
    planes->plane.igp = &planes->cycle_igp(*internet_->modeled(asn));
  }
}

void MonthContext::set_day(int day_of_month) {
  for (auto& [asn, planes] : planes_) {
    const ModeledAs* as = internet_->modeled(asn);
    const ProfileSnapshot profile =
        profile_at(asn, as->shape, cycle_, day_of_month);
    if (ldp_structural_changed(planes->profile, profile)) {
      internet_->build_as_planes(asn, *as, profile, *planes, pool_);
    } else if (te_structural_changed(planes->profile, profile)) {
      internet_->build_te_planes(asn, *as, profile, *planes);
    } else {
      Internet::apply_profile_scalars(profile, *planes);
      planes->profile = profile;
    }
  }
}

void MonthContext::apply_flaps(int sub_index, double flap_prob) {
  const GenConfig& config = internet_->config();
  for (auto& [asn, planes] : planes_) {
    const ModeledAs* as = internet_->modeled(asn);

    // --- ECMP hash-salt flaps (cheap per-router churn) -------------------
    auto& salts = planes->plane.ecmp_salts;
    salts.resize(as->topo.router_count());
    for (topo::RouterId r = 0; r < salts.size(); ++r) {
      const std::uint64_t base = util::hash_combine(
          (static_cast<std::uint64_t>(asn) << 32) | r, month_seed_);
      const bool flapped =
          to01(util::hash_combine(base, static_cast<std::uint64_t>(
                                            sub_index + 1))) < flap_prob;
      salts[r] = flapped
                     ? util::hash_combine(base, 0xF1A9ull + sub_index)
                     : base;
    }

    // --- link failures + IGP reconvergence ------------------------------
    // The month's failures layer on top of this cycle's persistent link
    // overlay: the reconvergence baseline is the overlay-converged state
    // and the down mask is the union of both layers.
    const igp::IgpState& cycle_base = planes->cycle_igp(*as);
    const igp::LinkOverlay* overlay =
        planes->overlay.down.empty() && planes->overlay.cost.empty()
            ? nullptr
            : &planes->overlay;
    const bool maintenance =
        to01(util::hash_combine(asn, month_seed_ ^ 0x3A17ull)) <
        config.as_maintenance_prob;
    bool any_down = false;
    std::vector<bool> down;
    if (overlay != nullptr && !overlay->down.empty()) {
      down = overlay->down;
    } else {
      down.assign(as->topo.link_count(), false);
    }
    if (maintenance) {
      for (topo::LinkId l = 0; l < as->topo.link_count(); ++l) {
        const std::uint64_t h = util::hash_combine(
            (static_cast<std::uint64_t>(asn) << 32) | l,
            month_seed_ ^ 0xD0D0ull);
        if (to01(h) >= config.link_fail_prob) continue;
        // The link goes down at a uniform snapshot of the month and stays
        // down (maintenance windows outlive the probing run).
        const int onset = static_cast<int>(util::mix64(h) % 3);
        if (sub_index >= onset && !down[l]) {
          down[l] = true;
          any_down = true;
        }
      }
    }
    if (any_down) {
      // Incremental reconvergence: only sources whose shortest-path DAG
      // crosses a downed link are recomputed; the rest reuse the base RIB.
      planes->igp_now = igp::IgpState::reconverge(as->topo, cycle_base, down,
                                                  pool_, nullptr, overlay);
      planes->plane.igp = &*planes->igp_now;
      // RSVP-TE reconverges too. With fast reroute, a broken LSP switches
      // to its pre-signalled backup (labels stable); otherwise it is
      // re-signalled over the post-failure route with fresh labels.
      if (planes->rsvp) {
        for (const mpls::TeLsp& lsp : planes->rsvp->lsps()) {
          if (!planes->rsvp->crosses_down_link(lsp.id, down)) continue;
          if (planes->rsvp->activate_backup(lsp.id, down)) continue;
          planes->rsvp->resignal_over(
              lsp.id,
              route_on(*planes->igp_now, lsp.ingress, lsp.egress,
                       as->topo.router_count()),
              planes->pools);
        }
      }
    } else {
      planes->igp_now.reset();
      planes->plane.igp = &cycle_base;
    }
  }
}

void MonthContext::advance_dynamics(util::Rng& rng) {
  (void)rng;
  for (auto& [asn, planes] : planes_) {
    if (!planes->rsvp) continue;
    const ModeledAs* as = internet_->modeled(asn);
    const ProfileSnapshot profile =
        profile_at(asn, as->shape, cycle_, /*day_of_month=*/1);
    if (!profile.dynamic_labels) continue;
    for (const mpls::TeLsp& lsp : planes->rsvp->lsps()) {
      planes->rsvp->reoptimize(lsp.id, planes->pools);
    }
  }
}

// ---------------------------------------------------------------------
// Internet construction
// ---------------------------------------------------------------------

Internet::Internet(const GenConfig& config, util::ThreadPool* pool)
    : config_(config) {
  if (config_.scale_routers > 0) {
    // Scale the AS count, not the AS size: per-AS IGP state is O(n^2), so
    // internet-scale worlds are many ~256-router transit networks.
    constexpr std::uint64_t kScaleAsRouters = 256;
    const auto want = static_cast<int>(
        (config_.scale_routers + kScaleAsRouters - 1) / kScaleAsRouters);
    config_.background_transit = std::max(config_.background_transit, want);
  }
  util::Rng rng(config.seed);
  build_graph(rng);
  build_topologies(rng, pool);
  place_monitors_and_destinations(rng);
}

void Internet::build_graph(util::Rng& rng_in) {
  util::Rng rng = rng_in.fork("as-graph");
  // Blocks carved sequentially from 16.0.0.0 in /16 units; transit ASes
  // take /15s (2 units), stubs /16s.
  std::uint32_t next_unit = 0;
  auto carve_block = [&](bool modeled) {
    const std::uint8_t length = modeled ? 15 : 16;
    if (modeled && (next_unit & 1)) ++next_unit;  // /15 alignment
    const std::uint32_t base = (16u << 24) + (next_unit << 16);
    next_unit += modeled ? 2 : 1;
    return net::Ipv4Prefix(net::Ipv4Addr(base), length);
  };

  auto add_node = [&](std::uint32_t asn, AsTier tier, bool modeled,
                      std::string name) {
    AsNode node;
    node.asn = asn;
    node.tier = tier;
    node.block = carve_block(modeled);
    node.modeled = modeled;
    node.name = std::move(name);
    graph_.add_as(std::move(node));
  };

  // Case-study ASes: four Tier-1s and one large transit network.
  add_node(kAsnAtt, AsTier::kTier1, true, "AT&T");
  add_node(kAsnLevel3, AsTier::kTier1, true, "Level3");
  add_node(kAsnNtt, AsTier::kTier1, true, "NTT");
  add_node(kAsnTata, AsTier::kTier1, true, "Tata");
  add_node(kAsnVodafone, AsTier::kTransit, true, "Vodafone");

  std::vector<std::uint32_t> tier1{kAsnAtt, kAsnLevel3, kAsnNtt, kAsnTata};
  for (int i = 0; i < config_.background_tier1; ++i) {
    const std::uint32_t asn = 100 + static_cast<std::uint32_t>(i);
    add_node(asn, AsTier::kTier1, true, "T1-" + std::to_string(asn));
    tier1.push_back(asn);
  }

  std::vector<std::uint32_t> transit{kAsnVodafone};
  for (int i = 0; i < config_.background_transit; ++i) {
    const std::uint32_t asn = 200 + static_cast<std::uint32_t>(i);
    add_node(asn, AsTier::kTransit, true, "TR-" + std::to_string(asn));
    transit.push_back(asn);
  }

  std::vector<std::uint32_t> stubs;
  for (int i = 0; i < config_.stub_ases; ++i) {
    const std::uint32_t asn = 30000 + static_cast<std::uint32_t>(i);
    add_node(asn, AsTier::kStub, false, "STUB-" + std::to_string(asn));
    stubs.push_back(asn);
  }

  // Tier-1 clique (settlement-free peering).
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1.size(); ++j) {
      graph_.add_peer_peer(tier1[i], tier1[j]);
    }
  }

  // Transit ASes buy from 1-2 Tier-1s and sometimes peer with each other.
  for (const std::uint32_t asn : transit) {
    const std::size_t first = static_cast<std::size_t>(rng.below(tier1.size()));
    graph_.add_provider_customer(tier1[first], asn);
    if (rng.chance(0.7) && tier1.size() > 1) {
      auto second = static_cast<std::size_t>(rng.below(tier1.size() - 1));
      if (second >= first) ++second;
      graph_.add_provider_customer(tier1[second], asn);
    }
  }
  for (std::size_t i = 0; i < transit.size(); ++i) {
    for (std::size_t j = i + 1; j < transit.size(); ++j) {
      if (rng.chance(0.12)) graph_.add_peer_peer(transit[i], transit[j]);
    }
  }

  // Stubs buy from 1-3 transit/Tier-1 networks.
  std::vector<std::uint32_t> uplinks = transit;
  uplinks.insert(uplinks.end(), tier1.begin(), tier1.end());
  for (const std::uint32_t asn : stubs) {
    const int n_providers = 1 + static_cast<int>(rng.below(3));
    std::vector<std::uint32_t> picked;
    for (int k = 0; k < n_providers; ++k) {
      const std::uint32_t p = rng.pick(uplinks);
      if (std::find(picked.begin(), picked.end(), p) == picked.end()) {
        graph_.add_provider_customer(p, asn);
        picked.push_back(p);
      }
    }
  }

  // Every transit AS must actually provide transit: guarantee stub
  // customers (otherwise a case-study AS could be invisible to probing).
  // Case-study networks get a few more so their longitudinal story rests
  // on a healthy tunnel population.
  auto ensure_stub_customers = [&](std::uint32_t asn, std::size_t want) {
    std::size_t stub_customers = 0;
    for (const std::uint32_t c : graph_.as_node(asn).customers) {
      if (graph_.as_node(c).tier == AsTier::kStub) ++stub_customers;
    }
    for (int guard = 0; stub_customers < want && guard < 200; ++guard) {
      const std::uint32_t stub = rng.pick(stubs);
      const auto& providers = graph_.as_node(stub).providers;
      if (std::find(providers.begin(), providers.end(), asn) ==
          providers.end()) {
        graph_.add_provider_customer(asn, stub);
        ++stub_customers;
      }
    }
  };
  for (const std::uint32_t asn : transit) ensure_stub_customers(asn, 2);
  ensure_stub_customers(kAsnVodafone, 4);
  for (const std::uint32_t asn : tier1) ensure_stub_customers(asn, 3);
}

void Internet::build_topologies(util::Rng& rng_in, util::ThreadPool* pool) {
  int background_index = 0;
  for (const std::uint32_t asn : graph_.asns()) {
    const AsNode& node = graph_.as_node(asn);
    if (!node.modeled) continue;

    util::Rng rng = rng_in.fork(util::hash_combine(asn, 0x70D0ull));
    AsShape shape;
    switch (asn) {
      case kAsnVodafone:
      case kAsnAtt:
      case kAsnTata:
      case kAsnNtt:
      case kAsnLevel3:
        shape = case_study_shape(asn);
        break;
      default:
        shape = background_shape(asn, background_index++, rng);
        if (config_.scale_routers > 0 && asn >= 200 && asn < 30000) {
          // Scaled background transit AS: ~256 routers, half the fleet
          // running a TE mesh (te density set from scale_lsps below), always
          // deployed so the standing world carries the target LSP load.
          shape.scaled = true;
          shape.archetype = (asn % 2 == 0) ? MplsArchetype::kTeMixed
                                           : MplsArchetype::kLdpEcmp;
          shape.adopt_cycle = -1;
          shape.retire_cycle = kCycles + 1;
          shape.topo.core_routers = 32;
          shape.topo.pop_routers = 224;
          shape.topo.border_share = 0.5;
        }
        break;
    }
    shape.topo.asn = asn;
    shape.topo.block = node.block;
    shape.topo.router_response_prob = config_.router_response_prob;

    topo::AsTopology topo = topo::build_as_topology(shape.topo, rng);
    igp::IgpState igp = igp::IgpState::compute(topo, nullptr, pool);
    auto modeled =
        std::make_unique<ModeledAs>(std::move(shape), std::move(topo),
                                    std::move(igp));

    // Peering points & entry interfaces per neighbour AS, in sorted
    // neighbour order for determinism.
    std::vector<std::uint32_t> neighbors;
    neighbors.insert(neighbors.end(), node.providers.begin(),
                     node.providers.end());
    neighbors.insert(neighbors.end(), node.customers.begin(),
                     node.customers.end());
    neighbors.insert(neighbors.end(), node.peers.begin(), node.peers.end());
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());

    const auto borders = modeled->topo.border_routers();
    const std::uint64_t entry_base = entry_region(node.block);
    std::uint64_t entry_slot = 0;
    const auto& customers = node.customers;
    for (const std::uint32_t neighbor : neighbors) {
      const bool is_customer =
          std::find(customers.begin(), customers.end(), neighbor) !=
          customers.end();
      const int points = static_cast<int>(
          std::min<std::size_t>(ModeledAs::kPeeringPoints, borders.size()));
      std::vector<topo::RouterId> chosen;
      std::vector<net::Ipv4Addr> ifaces;
      // Customers all attach at the same small set of edge PoPs (so one
      // egress border serves many customer ASes — without this, every
      // egress would serve a single destination AS and TransitDiversity
      // would discard the whole tunnel set of small transit networks).
      // Peers and providers interconnect at neighbour-specific points.
      const std::size_t start =
          is_customer ? 0
                      : static_cast<std::size_t>(
                            util::hash_combine(asn, neighbor) %
                            borders.size());
      for (int k = 0; k < points; ++k) {
        chosen.push_back(
            borders[(start + static_cast<std::size_t>(k)) % borders.size()]);
        ifaces.push_back(node.block.nth(entry_base + entry_slot * 2));
        ++entry_slot;
      }
      modeled->borders_toward[neighbor] = std::move(chosen);
      modeled->entry_ifaces_from[neighbor] = std::move(ifaces);
    }

    modeled_.emplace(asn, std::move(modeled));
  }

  // TE density for scaled worlds: size te_pair_share so the scaled TE meshes
  // together carry >= scale_lsps TE LSPs (pair slots counted from the built
  // topologies, so the target holds whatever border counts the builder drew).
  if (config_.scale_routers > 0 && config_.scale_lsps > 0) {
    double total_slots = 0.0;
    for (const auto& [asn, m] : modeled_) {
      if (!m->shape.scaled || m->shape.archetype != MplsArchetype::kTeMixed) {
        continue;
      }
      const double b = static_cast<double>(m->topo.border_routers().size());
      total_slots += b * (b - 1.0);
    }
    if (total_slots > 0.0) {
      constexpr double kShareCap = 0.95;
      const double target = static_cast<double>(config_.scale_lsps);
      const int lsps = std::max(
          1, static_cast<int>(std::ceil(target / (kShareCap * total_slots))));
      const double share =
          std::min(kShareCap, target / (total_slots * static_cast<double>(
                                                          lsps)));
      for (auto& [asn, m] : modeled_) {
        if (!m->shape.scaled ||
            m->shape.archetype != MplsArchetype::kTeMixed) {
          continue;
        }
        m->shape.te_pair_share_override = share;
        m->shape.te_lsps_override = lsps;
      }
    }
  }
}

void Internet::place_monitors_and_destinations(util::Rng& rng_in) {
  util::Rng rng = rng_in.fork("placement");

  // Monitors live in stub ASes. The fleet is seeded with one stub out of
  // each case-study AS's customer cone (so their tunnels are observed from
  // inside the cone, not only via inbound transit), then filled round-robin.
  std::vector<std::uint32_t> stubs;
  for (const std::uint32_t asn : graph_.asns()) {
    if (graph_.as_node(asn).tier == AsTier::kStub) stubs.push_back(asn);
  }
  std::vector<std::uint32_t> monitor_stubs;
  for (const std::uint32_t asn :
       {kAsnVodafone, kAsnAtt, kAsnTata, kAsnNtt, kAsnLevel3}) {
    for (const std::uint32_t c : graph_.as_node(asn).customers) {
      if (graph_.as_node(c).tier == AsTier::kStub &&
          std::find(monitor_stubs.begin(), monitor_stubs.end(), c) ==
              monitor_stubs.end()) {
        monitor_stubs.push_back(c);
        break;
      }
    }
  }
  for (std::size_t i = 0;
       monitor_stubs.size() <
       static_cast<std::size_t>(config_.monitors) && i < stubs.size();
       ++i) {
    if (std::find(monitor_stubs.begin(), monitor_stubs.end(), stubs[i]) ==
        monitor_stubs.end()) {
      monitor_stubs.push_back(stubs[i]);
    }
  }
  for (int m = 0; m < config_.monitors; ++m) {
    const std::uint32_t asn = monitor_stubs[static_cast<std::size_t>(m) %
                                            monitor_stubs.size()];
    probe::Monitor monitor;
    monitor.id = static_cast<std::uint32_t>(m);
    monitor.addr = graph_.as_node(asn).block.nth(
        9 + 4 * static_cast<std::uint64_t>(m));
    monitor.name = "ark-" + std::to_string(m);
    monitors_.push_back(std::move(monitor));
    monitor_asn_.push_back(asn);
  }

  // Destinations: every /24 of each AS's destination region, first address
  // (transit ASes announce twice the space of stubs — see the block layout).
  for (const std::uint32_t asn : graph_.asns()) {
    const AsNode& node = graph_.as_node(asn);
    const std::uint64_t base = dest_region(node.block);
    for (int k = 0; k < dest_slots(node.block); ++k) {
      Destination d;
      d.addr = node.block.nth(base + static_cast<std::uint64_t>(k) * 256 + 1);
      d.asn = asn;
      destinations_.push_back(d);
    }
  }
  rng.shuffle(destinations_);
}

const ModeledAs* Internet::modeled(std::uint32_t asn) const {
  const auto it = modeled_.find(asn);
  return it == modeled_.end() ? nullptr : it->second.get();
}

std::vector<std::uint32_t> Internet::modeled_asns() const {
  std::vector<std::uint32_t> out;
  out.reserve(modeled_.size());
  for (const auto& [asn, ptr] : modeled_) out.push_back(asn);
  return out;
}

dataset::Ip2As Internet::build_ip2as() const {
  dataset::Ip2As ip2as;
  for (const std::uint32_t asn : graph_.asns()) {
    ip2as.add_prefix(graph_.as_node(asn).block, asn);
  }
  // Mis-origination noise: a sibling ASN announces a /22 inside the link
  // region of a few modelled ASes (MOAS-style), so a small share of LSPs
  // appears to span two ASes and is dropped by the IntraAS filter.
  for (const std::uint32_t asn : graph_.asns()) {
    const AsNode& node = graph_.as_node(asn);
    if (!node.modeled) continue;
    const double u = to01(util::hash_combine(asn, config_.seed ^ 0x51B1ull));
    if (u < config_.ip2as_noise) {
      // A /29 over ~4 actually-used link subnets (around 60% through the
      // allocation order, i.e. PoP links): LSPs crossing one of them mix
      // ASNs and fall to the IntraAS filter.
      const ModeledAs* as = modeled(asn);
      const std::uint64_t used = as->topo.link_count() * 2;
      const std::uint64_t offset = (used * 3 / 5) & ~std::uint64_t{7};
      const net::Ipv4Prefix leaked(
          node.block.nth(node.block.size() / 4 + offset), 29);
      ip2as.add_prefix(leaked, asn + 64500);  // sibling / hijacker ASN
    }
  }
  return ip2as;
}

namespace {

std::vector<mpls::LabelPool::State> pool_states(
    const std::vector<mpls::LabelPool>& pools) {
  std::vector<mpls::LabelPool::State> out;
  out.reserve(pools.size());
  for (const mpls::LabelPool& pool : pools) out.push_back(pool.state());
  return out;
}

// Allocation-history drift between TE re-signalling epochs: every router
// discards a small per-router-constant number of labels per epoch, so a
// rebuilt epoch-k control plane draws from visibly different counter
// positions (Fig. 17 label motion) while staying O(1) to replay.
void burn_epoch_labels(std::uint32_t asn, std::uint64_t seed,
                       std::uint32_t epoch,
                       std::vector<mpls::LabelPool>& pools) {
  if (epoch == 0) return;
  for (std::size_t r = 0; r < pools.size(); ++r) {
    const std::uint64_t per_epoch =
        1 + util::hash_combine((static_cast<std::uint64_t>(asn) << 32) | r,
                               seed ^ 0x7E51ull) %
                7;
    pools[r].burn(std::uint64_t{epoch} * per_epoch);
  }
}

// Signal the full RSVP-TE mesh of one AS over `cycle_igp` (the TE block of a
// from-scratch build; also replayed alone by build_te_planes). Draw order is
// part of the determinism contract — LSP ids and label sequences must match a
// full rebuild exactly.
void signal_te_planes(std::uint32_t asn, const ModeledAs& modeled,
                      const ProfileSnapshot& profile,
                      const igp::IgpState& cycle_igp, AsPlanes& planes) {
  if (profile.te_pair_share <= 0.0 && profile.ldp_over_te_share <= 0.0) {
    return;
  }
  auto& plane = planes.plane;
  mpls::RsvpConfig rsvp_config;
  rsvp_config.php = profile.php;
  rsvp_config.diverse_route_prob = profile.te_diverse_route_prob;
  rsvp_config.frr = profile.te_frr;
  planes.rsvp = std::make_unique<mpls::RsvpTePlane>(&modeled.topo, &cycle_igp,
                                                    rsvp_config);

  // Stable pair selection: a pair joins the TE mesh once the share
  // rises past its fixed draw, so deployments grow monotonically.
  const auto borders = modeled.topo.border_routers();
  for (const topo::RouterId ingress : borders) {
    for (const topo::RouterId egress : borders) {
      if (ingress == egress) continue;
      const std::uint64_t pair_key =
          util::hash_combine(util::hash_combine(asn, ingress), egress);
      if (to01(util::mix64(pair_key)) >= profile.te_pair_share) {
        continue;
      }
      const int count =
          profile.te_lsps_min +
          static_cast<int>(util::mix64(pair_key ^ 0xC0ull) %
                           static_cast<std::uint64_t>(profile.te_lsps_max -
                                                      profile.te_lsps_min +
                                                      1));
      util::Rng pair_rng(pair_key);
      const auto ids =
          planes.rsvp->signal(ingress, egress, count, planes.pools, pair_rng);
      if (!ids.empty()) {
        plane.te_policy.pairs[{ingress, egress}] = ids;
      }
    }
  }
  plane.te_policy.te_share = profile.te_share;
  plane.te_policy.salt = util::hash_combine(asn, 0x7E7E7E7Eull);
  plane.rsvp = planes.rsvp.get();

  // LDP-over-RSVP hub tunnels: each border gets a tunnel to 1-2 core
  // routers (the builder allocates core router ids first).
  if (profile.ldp_over_te_share > 0.0 && profile.ldp) {
    plane.te_policy.ldp_over_te_share = profile.ldp_over_te_share;
    const int n_core = modeled.shape.topo.core_routers;
    for (const topo::RouterId ingress : borders) {
      std::vector<mpls::LspId> tunnels;
      for (int h = 0; h < 2 && h < n_core; ++h) {
        const topo::RouterId hub = static_cast<topo::RouterId>(
            (util::hash_combine(asn, ingress) +
             static_cast<std::uint64_t>(h)) %
            static_cast<std::uint64_t>(n_core));
        if (hub == ingress) continue;
        util::Rng hub_rng(util::hash_combine(ingress, hub));
        const auto hub_ids =
            planes.rsvp->signal(ingress, hub, 1, planes.pools, hub_rng);
        tunnels.insert(tunnels.end(), hub_ids.begin(), hub_ids.end());
      }
      if (!tunnels.empty()) {
        plane.te_policy.hub_tunnels[ingress] = std::move(tunnels);
      }
    }
  }
}

}  // namespace

igp::LinkOverlay Internet::overlay_at(const ModeledAs& as, std::uint32_t asn,
                                      int cycle) const {
  igp::LinkOverlay overlay;
  const GenConfig::Churn& churn = config_.churn;
  if (cycle <= 0 ||
      (churn.link_down_prob <= 0.0 && churn.metric_change_prob <= 0.0 &&
       churn.router_down_prob <= 0.0)) {
    return overlay;
  }
  const std::uint64_t key = util::hash_combine(
      config_.seed ^ 0xE0E1ull,
      util::hash_combine(asn, static_cast<std::uint64_t>(cycle)));
  const std::size_t n_links = as.topo.link_count();
  std::vector<bool> down(n_links, false);
  std::vector<std::uint32_t> cost(n_links, 0);
  bool any_down = false;
  bool any_cost = false;
  for (const topo::Link& link : as.topo.links()) {
    const std::uint64_t h = util::hash_combine(key, 0xD011ull + link.id);
    if (to01(h) < churn.link_down_prob) {
      down[link.id] = true;
      any_down = true;
      continue;
    }
    const std::uint64_t hm = util::hash_combine(key, 0x3E71ull + link.id);
    if (to01(hm) < churn.metric_change_prob) {
      // Re-priced near the base metric; never 0 (0 means "no override") and
      // never the base value, so the override is a real change.
      std::uint32_t priced = 1 + static_cast<std::uint32_t>(
                                     util::mix64(hm) %
                                     (2ull * link.igp_cost + 2));
      if (priced == link.igp_cost) ++priced;
      cost[link.id] = priced;
      any_cost = true;
    }
  }
  if (churn.router_down_prob > 0.0) {
    for (const topo::Router& r : as.topo.routers()) {
      const std::uint64_t h = util::hash_combine(key, 0x4007ull + r.id);
      if (to01(h) >= churn.router_down_prob) continue;
      for (const topo::LinkId l : as.topo.links_of(r.id)) {
        if (!down[l]) {
          down[l] = true;
          any_down = true;
        }
      }
    }
  }
  // Canonical form: the trivial overlay is {} so overlay comparisons and
  // the "no overlay" fast paths stay exact.
  if (any_down) overlay.down = std::move(down);
  if (any_cost) overlay.cost = std::move(cost);
  return overlay;
}

std::uint32_t Internet::label_epoch_at(std::uint32_t asn, int cycle) const {
  const double prob = config_.churn.te_resignal_prob;
  if (prob <= 0.0 || cycle <= 0) return 0;
  std::uint32_t epochs = 0;
  for (int c = 1; c <= cycle; ++c) {
    const std::uint64_t h = util::hash_combine(
        config_.seed ^ 0x7E5Aull,
        util::hash_combine(asn, static_cast<std::uint64_t>(c)));
    if (to01(h) < prob) ++epochs;
  }
  return epochs;
}

void Internet::apply_profile_scalars(const ProfileSnapshot& profile,
                                     AsPlanes& planes) {
  auto& plane = planes.plane;
  plane.ttl_propagate = profile.ttl_propagate;
  plane.rfc4950 = profile.rfc4950;
  plane.mpls_coverage = profile.mpls_enabled ? profile.mpls_coverage : 0.0;
  plane.ler_share = profile.ler_share;
  if (planes.rsvp) plane.te_policy.te_share = profile.te_share;
}

void Internet::build_as_planes(std::uint32_t asn, const ModeledAs& modeled,
                               const ProfileSnapshot& profile,
                               AsPlanes& planes,
                               util::ThreadPool* pool) const {
  (void)pool;  // per-AS work runs single-threaded under the AS-level fan-out
  const igp::IgpState& cycle_igp = planes.cycle_igp(modeled);

  planes.pools.clear();
  planes.ldp.reset();
  planes.rsvp.reset();
  planes.igp_now.reset();
  planes.plane = probe::AsDataPlane{};
  auto& plane = planes.plane;
  plane.asn = asn;
  plane.topo = &modeled.topo;
  plane.igp = &cycle_igp;
  plane.coverage_salt = util::hash_combine(asn, config_.seed ^ 0xC0Full);
  plane.ler_salt = util::hash_combine(asn, config_.seed ^ 0x1E4ull);

  if (profile.mpls_enabled) {
    planes.pools.reserve(modeled.topo.router_count());
    for (const topo::Router& r : modeled.topo.routers()) {
      // Desynchronized per-router counters (see LabelPool): stable per
      // (seed, asn, router) so labels persist across snapshots/cycles.
      planes.pools.emplace_back(
          r.vendor,
          util::hash_combine(
              (static_cast<std::uint64_t>(asn) << 32) | r.id,
              config_.seed ^ 0x9001ull));
    }
    if (profile.ldp) {
      mpls::LdpConfig ldp_config;
      ldp_config.php = profile.php;
      ldp_config.fec_all_loopbacks = profile.fec_all_loopbacks;
      // LDP binds over the time-invariant base IGP: bindings pre-date this
      // cycle's overlay (a binding exists per (router, FEC) regardless);
      // forwarding follows plane.igp, exactly as with in-month failures.
      planes.ldp = mpls::LdpPlane::build(modeled.topo, modeled.igp,
                                         ldp_config, planes.pools);
      plane.ldp = &*planes.ldp;
    }
    // Counter snapshot the TE-only rebuild restarts from, then the
    // re-signalling epoch drift, then the TE mesh over the cycle IGP.
    planes.pools_after_ldp = pool_states(planes.pools);
    burn_epoch_labels(asn, config_.seed, planes.label_epoch, planes.pools);
    signal_te_planes(asn, modeled, profile, cycle_igp, planes);
  } else {
    planes.pools_after_ldp.clear();
  }

  apply_profile_scalars(profile, planes);
  planes.pools_pristine = pool_states(planes.pools);
  if (planes.rsvp) planes.rsvp->mark_pristine();
  planes.profile = profile;
}

void Internet::build_te_planes(std::uint32_t asn, const ModeledAs& modeled,
                               const ProfileSnapshot& profile,
                               AsPlanes& planes) const {
  const igp::IgpState& cycle_igp = planes.cycle_igp(modeled);
  auto& plane = planes.plane;
  // Rewind label counters to the post-LDP snapshot and replay the epoch
  // drift: the fresh TE mesh then draws exactly the label sequence a full
  // from-scratch build of this profile would.
  for (std::size_t i = 0; i < planes.pools.size(); ++i) {
    planes.pools[i].restore(planes.pools_after_ldp[i]);
  }
  burn_epoch_labels(asn, config_.seed, planes.label_epoch, planes.pools);
  planes.rsvp.reset();
  planes.igp_now.reset();
  plane.igp = &cycle_igp;
  plane.rsvp = nullptr;
  plane.te_policy = probe::TePolicy{};
  if (profile.mpls_enabled) {
    signal_te_planes(asn, modeled, profile, cycle_igp, planes);
  }
  apply_profile_scalars(profile, planes);
  planes.pools_pristine = pool_states(planes.pools);
  if (planes.rsvp) planes.rsvp->mark_pristine();
  planes.profile = profile;
}

MonthContext Internet::instantiate(int cycle, int day_of_month,
                                   util::ThreadPool* pool) const {
  MonthContext ctx;
  ctx.cycle_ = cycle;
  ctx.internet_ = this;
  ctx.pool_ = pool;
  ctx.month_seed_ = util::hash_combine(config_.seed, 0xC1C7Eull + cycle);

  // Per-AS builds are independent: fan out across ASes and assemble the
  // ordered plane map serially, so the result is thread-count invariant.
  std::vector<std::uint32_t> asns;
  asns.reserve(modeled_.size());
  for (const auto& [asn, modeled] : modeled_) asns.push_back(asn);
  std::vector<std::unique_ptr<AsPlanes>> built(asns.size());
  util::parallel_for(pool, asns.size(), [&](std::size_t i) {
    const std::uint32_t asn = asns[i];
    const ModeledAs& as = *modeled_.at(asn);
    auto planes = std::make_unique<AsPlanes>();
    planes->overlay = overlay_at(as, asn, cycle);
    planes->label_epoch = label_epoch_at(asn, cycle);
    if (!planes->overlay.trivial()) {
      // Nested parallel_for runs inline inside a pool worker, so this SPF
      // is effectively single-threaded here; AS-level fan-out saturates.
      planes->igp_cycle = igp::IgpState::compute(as.topo, nullptr, pool,
                                                 &planes->overlay);
    }
    build_as_planes(asn, as, profile_at(asn, as.shape, cycle, day_of_month),
                    *planes, pool);
    built[i] = std::move(planes);
  });
  for (std::size_t i = 0; i < asns.size(); ++i) {
    ctx.planes_.emplace(asns[i], std::move(built[i]));
  }
  ctx.apply_flaps(/*sub_index=*/0, config_.ecmp_flap_prob);
  return ctx;
}

std::optional<probe::PathSpec> Internet::path_spec(
    const probe::Monitor& monitor, const Destination& dest,
    const MonthContext& ctx) const {
  PathScratch scratch;
  if (!path_spec(monitor, dest, ctx, scratch)) return std::nullopt;
  return std::move(scratch.path);
}

bool Internet::path_spec(const probe::Monitor& monitor,
                         const Destination& dest, const MonthContext& ctx,
                         PathScratch& scratch) const {
  const std::uint32_t src_asn = monitor_asn_.at(monitor.id);
  std::vector<std::uint32_t>& as_path = scratch.as_path;
  graph_.route(src_asn, dest.asn, as_path);
  if (as_path.empty()) return false;

  probe::PathSpec& path = scratch.path;
  path.pre_hops.clear();
  path.segments.clear();
  path.post_hops.clear();
  path.dst = dest.addr;
  path.dst_responds =
      to01(util::hash_combine(dest.addr.value(),
                              config_.seed ^ 0xDE57ull)) >=
      config_.dest_silent_prob;
  const std::uint64_t dh = dst24_hash(dest.addr);

  // Source-side stub hops: monitor gateway + stub exit router.
  const AsNode& src_node = graph_.as_node(src_asn);
  path.pre_hops.push_back(src_node.block.nth(
      src_node.block.size() / 4 + 2 * monitor.id));
  path.pre_hops.push_back(src_node.block.nth(
      src_node.block.size() / 4 + 64 + 2 *
          (util::hash_combine(monitor.id, as_path.size() > 1 ? as_path[1]
                                                             : 0) % 8)));

  for (std::size_t i = 1; i < as_path.size(); ++i) {
    const std::uint32_t asn = as_path[i];
    const AsNode& node = graph_.as_node(asn);
    const std::uint32_t prev_asn = as_path[i - 1];
    if (!node.modeled) {
      // Stub AS: destination side only (stubs never provide transit).
      const std::uint64_t quarter = node.block.size() / 4;
      path.post_hops.push_back(node.block.nth(
          quarter + 128 + 2 * (util::hash_combine(prev_asn, asn) % 16)));
      continue;
    }

    const ModeledAs* as = modeled(asn);
    probe::SegmentSpec seg;
    seg.plane = ctx.plane_of(asn);
    if (seg.plane == nullptr) return false;
    // Hot-potato ingress: where a packet enters an AS is fixed by where it
    // comes FROM (the upstream handed it over at the interconnect nearest
    // the source), not by its destination — so one monitor funnels all its
    // traffic through one ingress and IOTPs aggregate many destinations.
    const std::uint64_t ingress_hash =
        util::hash_combine(monitor.id + 1, prev_asn);
    seg.ingress = as->border_for(prev_asn, ingress_hash);
    seg.entry_iface = as->entry_iface_for(prev_asn, ingress_hash);
    if (i + 1 < as_path.size()) {
      // Egress toward the next AS; rotate the hash so ingress and egress
      // peering-point choices decorrelate.
      seg.egress = as->border_for(as_path[i + 1], util::mix64(dh + 1));
    } else {
      // Destination lives inside this modelled AS: route to its
      // (hash-chosen) attachment router.
      seg.egress = static_cast<topo::RouterId>(
          util::mix64(dest.addr.value() >> 8) % as->topo.router_count());
    }
    path.segments.push_back(seg);
  }
  return true;
}

}  // namespace mum::gen
