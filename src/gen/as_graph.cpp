#include "gen/as_graph.h"

#include <algorithm>
#include <deque>
#include <mutex>

namespace mum::gen {

void AsGraph::add_as(AsNode node) {
  index_.emplace(node.asn, nodes_.size());
  order_.push_back(node.asn);
  nodes_.push_back(std::move(node));
}

void AsGraph::add_provider_customer(std::uint32_t provider,
                                    std::uint32_t customer) {
  nodes_[index_of(provider)].customers.push_back(customer);
  nodes_[index_of(customer)].providers.push_back(provider);
  cache_.clear();
}

void AsGraph::add_peer_peer(std::uint32_t a, std::uint32_t b) {
  nodes_[index_of(a)].peers.push_back(b);
  nodes_[index_of(b)].peers.push_back(a);
  cache_.clear();
}

const AsNode& AsGraph::as_node(std::uint32_t asn) const {
  return nodes_[index_of(asn)];
}

bool AsGraph::contains(std::uint32_t asn) const {
  return index_.contains(asn);
}

const AsGraph::DestTables& AsGraph::tables_for(std::uint32_t dst) const {
  {
    std::shared_lock<std::shared_mutex> lock(cache_mutex_);
    const auto cached = cache_.find(dst);
    if (cached != cache_.end()) return cached->second;
  }
  // Compute outside the lock: concurrent misses on the same destination
  // redundantly compute identical tables; try_emplace keeps the first.

  const std::size_t n = nodes_.size();
  DestTables t;
  t.down.assign(n, kUnreach);
  t.peer.assign(n, kUnreach);
  t.up.assign(n, kUnreach);

  // 1. down[a]: a reaches dst by forwarding to a *customer* at every hop
  //    (i.e. dst sits somewhere below a in the customer cone). BFS upward
  //    from dst through provider edges.
  std::deque<std::size_t> queue;
  const std::size_t dst_idx = index_of(dst);
  t.down[dst_idx] = 0;
  queue.push_back(dst_idx);
  while (!queue.empty()) {
    const std::size_t c = queue.front();
    queue.pop_front();
    for (const std::uint32_t provider : nodes_[c].providers) {
      const std::size_t p = index_of(provider);
      if (t.down[p] == kUnreach) {
        t.down[p] = t.down[c] + 1;
        queue.push_back(p);
      }
    }
  }

  // 2. peer[a]: cross exactly one peer edge, then pure downhill.
  for (std::size_t a = 0; a < n; ++a) {
    for (const std::uint32_t q : nodes_[a].peers) {
      const std::size_t qi = index_of(q);
      if (t.down[qi] != kUnreach) {
        t.peer[a] = std::min(t.peer[a], t.down[qi] + 1);
      }
    }
  }

  // 3. up[a]: overall best = min(down, peer, 1 + up[provider]). The provider
  //    recursion is a shortest-path over provider edges with per-node base
  //    costs min(down, peer) — run a BFS-like relaxation (costs are +1).
  for (std::size_t a = 0; a < n; ++a) {
    t.up[a] = std::min(t.down[a], t.peer[a]);
  }
  // Dial-style relaxation: repeat until fixpoint (graph is small).
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t a = 0; a < n; ++a) {
      for (const std::uint32_t provider : nodes_[a].providers) {
        const std::size_t p = index_of(provider);
        if (t.up[p] != kUnreach && t.up[p] + 1 < t.up[a]) {
          t.up[a] = t.up[p] + 1;
          changed = true;
        }
      }
    }
  }

  std::unique_lock<std::shared_mutex> lock(cache_mutex_);
  return cache_.try_emplace(dst, std::move(t)).first->second;
}

std::vector<std::uint32_t> AsGraph::route(std::uint32_t src,
                                          std::uint32_t dst) const {
  std::vector<std::uint32_t> path;
  route(src, dst, path);
  return path;
}

void AsGraph::route(std::uint32_t src, std::uint32_t dst,
                    std::vector<std::uint32_t>& path) const {
  path.clear();
  if (src == dst) {
    path.push_back(src);
    return;
  }
  const DestTables& t = tables_for(dst);

  path.push_back(src);
  // Phase encodes where we are in the valley-free walk:
  // 0 = may still climb providers, 1 = peer edge used / descending only.
  int phase = 0;
  std::size_t at = index_of(src);
  while (nodes_[at].asn != dst) {
    if (path.size() > nodes_.size()) {  // safety: no route
      path.clear();
      return;
    }

    // Candidate next hops with the metric they would leave us with,
    // preferring customer > peer > provider on equal totals.
    std::size_t best_next = ~std::size_t{0};
    std::uint32_t best_metric = kUnreach;
    int best_pref = -1;
    int best_phase = phase;

    auto consider = [&](std::size_t next, std::uint32_t metric, int pref,
                        int next_phase) {
      if (metric == kUnreach) return;
      if (metric < best_metric ||
          (metric == best_metric && pref > best_pref) ||
          (metric == best_metric && pref == best_pref &&
           best_next != ~std::size_t{0} &&
           nodes_[next].asn < nodes_[best_next].asn)) {
        best_next = next;
        best_metric = metric;
        best_pref = pref;
        best_phase = next_phase;
      }
    };

    // Downhill (customer) steps are always allowed.
    for (const std::uint32_t c : nodes_[at].customers) {
      const std::size_t ci = index_of(c);
      consider(ci, t.down[ci], /*pref=*/2, /*next_phase=*/1);
    }
    if (phase == 0) {
      // One peer edge allowed, then strictly downhill.
      for (const std::uint32_t q : nodes_[at].peers) {
        const std::size_t qi = index_of(q);
        consider(qi, t.down[qi], /*pref=*/1, /*next_phase=*/1);
      }
      // Climbing to a provider keeps all options open.
      for (const std::uint32_t p : nodes_[at].providers) {
        const std::size_t pi = index_of(p);
        consider(pi, t.up[pi], /*pref=*/0, /*next_phase=*/0);
      }
    }

    if (best_next == ~std::size_t{0}) {  // unreachable
      path.clear();
      return;
    }
    at = best_next;
    phase = best_phase;
    path.push_back(nodes_[at].asn);
  }
}

bool AsGraph::fully_connected() const {
  for (const std::uint32_t src : order_) {
    for (const std::uint32_t dst : order_) {
      if (src != dst && route(src, dst).empty()) return false;
    }
  }
  return true;
}

}  // namespace mum::gen
