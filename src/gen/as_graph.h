// AS-level internet model: tiers, business relationships, and valley-free
// (Gao-Rexford) route selection. This is the substrate that decides which
// transit ASes — and therefore which MPLS domains — a probe crosses.
#pragma once

#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "net/ipv4.h"

namespace mum::gen {

enum class AsTier : std::uint8_t { kTier1, kTransit, kStub };

struct AsNode {
  std::uint32_t asn = 0;
  AsTier tier = AsTier::kStub;
  net::Ipv4Prefix block;       // address block the AS originates
  bool modeled = false;        // has a router-level topology
  std::string name;

  // Adjacency (filled by AsGraph).
  std::vector<std::uint32_t> providers;
  std::vector<std::uint32_t> customers;
  std::vector<std::uint32_t> peers;
};

class AsGraph {
 public:
  AsGraph() = default;
  // Movable despite the cache mutex: moving is a mutation, so it must not
  // race with concurrent route() calls anyway — the mutex itself stays put.
  AsGraph(AsGraph&& other) noexcept
      : nodes_(std::move(other.nodes_)),
        order_(std::move(other.order_)),
        index_(std::move(other.index_)),
        cache_(std::move(other.cache_)) {}
  AsGraph& operator=(AsGraph&& other) noexcept {
    nodes_ = std::move(other.nodes_);
    order_ = std::move(other.order_);
    index_ = std::move(other.index_);
    cache_ = std::move(other.cache_);
    return *this;
  }

  // Adds a node; ASN must be unique.
  void add_as(AsNode node);
  // Relationship edges (no duplicate checking; caller ensures sanity).
  void add_provider_customer(std::uint32_t provider, std::uint32_t customer);
  void add_peer_peer(std::uint32_t a, std::uint32_t b);

  const AsNode& as_node(std::uint32_t asn) const;
  bool contains(std::uint32_t asn) const;
  const std::vector<std::uint32_t>& asns() const noexcept { return order_; }
  std::size_t size() const noexcept { return order_.size(); }

  // Valley-free AS path from src to dst (inclusive); empty when unreachable.
  // Preference: customer route > peer route > provider route, then shortest,
  // then lowest-ASN tie-break — memoized per destination. Safe to call
  // concurrently (the memo cache is lock-guarded); mutation via add_* must
  // not race with route().
  std::vector<std::uint32_t> route(std::uint32_t src, std::uint32_t dst) const;
  // Scratch-reusing form: clears and refills `out` (capacity kept) — the
  // per-probe hot path. Same result as the returning overload.
  void route(std::uint32_t src, std::uint32_t dst,
             std::vector<std::uint32_t>& out) const;

  // True when every AS can reach every other AS.
  bool fully_connected() const;

 private:
  struct DestTables {
    // Path lengths per route type; kUnreach when impossible.
    std::vector<std::uint32_t> down;  // pure customer chain (downhill)
    std::vector<std::uint32_t> peer;  // one peer edge then downhill
    std::vector<std::uint32_t> up;    // best overall (may climb providers)
  };
  static constexpr std::uint32_t kUnreach = ~std::uint32_t{0};

  const DestTables& tables_for(std::uint32_t dst) const;
  std::size_t index_of(std::uint32_t asn) const { return index_.at(asn); }

  std::vector<AsNode> nodes_;
  std::vector<std::uint32_t> order_;
  std::unordered_map<std::uint32_t, std::size_t> index_;
  mutable std::shared_mutex cache_mutex_;
  mutable std::unordered_map<std::uint32_t, DestTables> cache_;
};

}  // namespace mum::gen
