// Delta-based cycle evolution: cycle N+1 as a mutation of cycle N.
//
// A from-scratch `Internet::instantiate()` rebuilds every AS's label pools,
// LDP bindings and RSVP-TE mesh each cycle, even though a real network — and
// the generator's profile model — changes only incrementally month over month
// (the paper on AS3356: "nothing has changed [infrastructurally] between
// Cycle 28 and Cycle 29"). The DeltaEvolver keeps ONE standing MonthContext
// and advances it: per-cycle churn (link/metric/router deltas, TE
// re-signalling epochs) routes through incremental SPF
// (igp::IgpState::reconverge_delta) and TE-only re-signalling; untouched ASes
// are merely rolled back to their pristine start-of-month state.
//
// Determinism contract (the oracle property, enforced by tests/test_evolve):
// every per-cycle delta is a pure function of (seed, asn, cycle), so a
// delta-evolved cycle is byte-identical to `instantiate(cycle)` — the full
// rebuild stays available as the oracle (`--evolve off`) — at any thread
// count.
#pragma once

#include <cstddef>
#include <optional>

#include "gen/internet.h"
#include "util/thread_pool.h"

namespace mum::gen {

// Per-cycle delta accounting (surfaced in run manifests and benches).
struct CycleDeltaStats {
  int cycle = -1;
  bool full_build = false;  // from-scratch instantiate (first cycle/fallback)
  std::size_t ases_total = 0;
  std::size_t ases_rebuilt = 0;     // LDP-structural: full per-AS rebuild
  std::size_t ases_te_rebuilt = 0;  // TE mesh re-signalled only
  std::size_t ases_restored = 0;    // pristine rollback only
  std::size_t links_down = 0;          // overlay down links, all ASes
  std::size_t links_cost_changed = 0;  // overlay metric overrides, all ASes
  std::size_t spf_sources_total = 0;       // routers of overlay-changed ASes
  std::size_t spf_sources_recomputed = 0;  // sources the delta SPF re-ran
  std::size_t lsps_signalled = 0;  // TE LSPs signed by rebuilt/re-signed ASes
};

// Owns the standing MonthContext of a campaign and evolves it cycle to
// cycle. Not thread-safe; one evolver per campaign runner.
class DeltaEvolver {
 public:
  explicit DeltaEvolver(const Internet& internet,
                        util::ThreadPool* pool = nullptr)
      : internet_(&internet), pool_(pool) {}

  // Returns the context at (cycle, day_of_month). Advancing from the
  // current cycle applies deltas; the first call, a backward jump, or a
  // recovery after a failed step falls back to a full instantiate. Gaps are
  // fine: intermediate cycles' deltas replay in order (each cycle's state
  // is a pure function of (seed, cycle), not of the visit sequence).
  MonthContext& evolve_to(int cycle, int day_of_month = 1);

  const MonthContext* context() const noexcept {
    return ctx_ ? &*ctx_ : nullptr;
  }
  const Internet& internet() const noexcept { return *internet_; }
  // Accounting for the work the last evolve_to() performed.
  const CycleDeltaStats& last_stats() const noexcept { return stats_; }

 private:
  void full_build(int cycle, int day_of_month);
  void step_to(int cycle, int day_of_month);

  const Internet* internet_;
  util::ThreadPool* pool_;
  std::optional<MonthContext> ctx_;
  int day_ = 1;
  // Set when a delta step threw mid-mutation: the standing context may be
  // inconsistent, so the next evolve_to() rebuilds from scratch.
  bool poisoned_ = false;
  CycleDeltaStats stats_;
};

}  // namespace mum::gen
