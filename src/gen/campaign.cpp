#include "gen/campaign.h"

#include "obs/telemetry.h"
#include "probe/forwarder.h"
#include "probe/traceroute.h"
#include "util/arena.h"

namespace mum::gen {

struct CampaignRunner::MonitorShard {
  util::Arena arena;
  probe::WalkResult walk;
  Internet::PathScratch path;
};

CampaignRunner::CampaignRunner(const Internet& internet,
                               const dataset::Ip2As& ip2as,
                               CampaignConfig config, util::ThreadPool* pool)
    : internet_(&internet),
      ip2as_(&ip2as),
      config_(std::move(config)),
      pool_(pool) {}

CampaignRunner::~CampaignRunner() = default;
CampaignRunner::CampaignRunner(CampaignRunner&&) noexcept = default;
CampaignRunner& CampaignRunner::operator=(CampaignRunner&&) noexcept =
    default;

dataset::Snapshot CampaignRunner::snapshot(MonthContext& ctx, int cycle,
                                           int sub_index) const {
  return snapshot(ctx, cycle, sub_index, config_);
}

dataset::Snapshot CampaignRunner::snapshot(
    MonthContext& ctx, int cycle, int sub_index,
    const CampaignConfig& config) const {
  if (config.batch) {
    return snapshot_batch(ctx, cycle, sub_index, config).to_snapshot();
  }

  const Internet& internet = *internet_;
  dataset::Snapshot snap;
  snap.cycle_id = static_cast<std::uint32_t>(cycle);
  snap.sub_index = static_cast<std::uint32_t>(sub_index);
  snap.date = cycle_date(cycle);

  ctx.apply_flaps(sub_index, internet.config().ecmp_flap_prob);

  const auto& monitors = internet.monitors();
  const auto& dests = internet.destinations();
  const std::size_t n_monitors = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(monitors.size()) * config.monitor_share));

  // Observation-noise seed lineage: (seed, cycle, sub_index). Each monitor
  // forks its own stream below, so monitors can run in any order — or in
  // parallel — without perturbing each other's draws.
  const util::Rng noise_base(util::hash_combine(
      internet.config().seed,
      util::hash_combine(0xABCDull + cycle, sub_index)));

  const int per_monitor = internet.config().dests_per_monitor;
  const int overlap = std::max(1, internet.config().dest_overlap);

  // Ark-style split of the destination list across the fleet, with overlap:
  // destination d is probed by the `overlap` monitors following d % N
  // (stable across snapshots, so the Persistence filter compares like with
  // like). Each monitor writes its own trace block; blocks are concatenated
  // in monitor order so the merged snapshot is identical to a serial run.
  std::vector<std::vector<dataset::Trace>> blocks(n_monitors);
  util::parallel_for(pool_, n_monitors, [&](std::size_t mi) {
    const probe::Monitor& monitor = monitors[mi];
    util::Rng rng = noise_base.fork(mi);
    std::vector<dataset::Trace>& out = blocks[mi];
    int probed = 0;
    for (int o = 0; o < overlap && probed < per_monitor; ++o) {
      const std::size_t lane =
          (mi + monitors.size() - static_cast<std::size_t>(o)) %
          monitors.size();
      const int per_dest = std::max(1, internet.config().probes_per_dest);
      for (std::size_t d = lane; d < dests.size() && probed < per_monitor;
           d += monitors.size(), ++probed) {
        for (int pp = 0; pp < per_dest; ++pp) {
          // Additional probes land in the same /24 (same FEC) but hash to
          // different Paris flows.
          Destination dest = dests[d];
          dest.addr = net::Ipv4Addr(dest.addr.value() +
                                    static_cast<std::uint32_t>(pp) * 128);
          const auto path = internet.path_spec(monitor, dest, ctx);
          if (!path) continue;
          out.push_back(
              probe::trace_route(monitor, *path, config.trace, rng));
        }
      }
    }
  });

  std::size_t total = 0;
  for (const auto& block : blocks) total += block.size();
  snap.traces.reserve(total);
  for (auto& block : blocks) {
    for (auto& trace : block) snap.traces.push_back(std::move(trace));
  }

  ip2as_->annotate(snap.traces);
  return snap;
}

dataset::SnapshotBatch CampaignRunner::snapshot_batch(MonthContext& ctx,
                                                      int cycle,
                                                      int sub_index) const {
  return snapshot_batch(ctx, cycle, sub_index, config_);
}

dataset::SnapshotBatch CampaignRunner::snapshot_batch(
    MonthContext& ctx, int cycle, int sub_index,
    const CampaignConfig& config) const {
  const Internet& internet = *internet_;
  dataset::SnapshotBatch snap;
  snap.cycle_id = static_cast<std::uint32_t>(cycle);
  snap.sub_index = static_cast<std::uint32_t>(sub_index);
  snap.date = cycle_date(cycle);

  ctx.apply_flaps(sub_index, internet.config().ecmp_flap_prob);

  const auto& monitors = internet.monitors();
  const auto& dests = internet.destinations();
  const std::size_t n_monitors = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(monitors.size()) * config.monitor_share));

  // Same observation-noise lineage as the heap path: byte-identity between
  // the two rests on every monitor consuming the identical draw sequence.
  const util::Rng noise_base(util::hash_combine(
      internet.config().seed,
      util::hash_combine(0xABCDull + cycle, sub_index)));

  const int per_monitor = internet.config().dests_per_monitor;
  const int overlap = std::max(1, internet.config().dest_overlap);

  // Shard arenas are grown serially, then reset and lent to one TraceBatch
  // each: after the first snapshot every column re-carves the same chunks,
  // so the probe loop's steady state performs no heap allocation.
  while (shards_.size() < n_monitors) {
    shards_.push_back(std::make_unique<MonitorShard>());
  }
  std::vector<dataset::TraceBatch> blocks;
  blocks.reserve(n_monitors);
  for (std::size_t mi = 0; mi < n_monitors; ++mi) {
    shards_[mi]->arena.reset();
    blocks.emplace_back(shards_[mi]->arena);
  }

  util::parallel_for(pool_, n_monitors, [&](std::size_t mi) {
    const probe::Monitor& monitor = monitors[mi];
    util::Rng rng = noise_base.fork(mi);
    dataset::TraceBatch& out = blocks[mi];
    probe::WalkResult& walk = shards_[mi]->walk;
    Internet::PathScratch& path = shards_[mi]->path;
    int probed = 0;
    for (int o = 0; o < overlap && probed < per_monitor; ++o) {
      const std::size_t lane =
          (mi + monitors.size() - static_cast<std::size_t>(o)) %
          monitors.size();
      const int per_dest = std::max(1, internet.config().probes_per_dest);
      for (std::size_t d = lane; d < dests.size() && probed < per_monitor;
           d += monitors.size(), ++probed) {
        for (int pp = 0; pp < per_dest; ++pp) {
          Destination dest = dests[d];
          dest.addr = net::Ipv4Addr(dest.addr.value() +
                                    static_cast<std::uint32_t>(pp) * 128);
          if (!internet.path_spec(monitor, dest, ctx, path)) continue;
          probe::trace_route_into(monitor, path.path, config.trace, rng,
                                  out, &walk);
        }
      }
    }
  });

  // Column-wise merge in monitor order into the snapshot's private arena —
  // one exact reserve, then bulk appends with offset rebasing.
  std::size_t traces = 0, hops = 0, lses = 0;
  for (const auto& block : blocks) {
    traces += block.trace_count();
    hops += block.hop_count();
    lses += block.lse_count();
  }
  snap.traces.reserve(traces, hops, lses);
  for (const auto& block : blocks) snap.traces.append(block);

  ip2as_->annotate(snap.traces, asn_cache_);

  // Arena telemetry — observed state only (obs/telemetry.h contract); the
  // soak test asserts the high-water gauge stops climbing after warm-up.
  static obs::Gauge& arena_capacity =
      obs::registry().gauge("probe.arena.capacity_bytes");
  static obs::Gauge& arena_high_water =
      obs::registry().gauge("probe.arena.high_water_bytes");
  static obs::Counter& arena_resets =
      obs::registry().counter("probe.arena.resets");
  static obs::Counter& batch_traces =
      obs::registry().counter("probe.batch.traces");
  static obs::Counter& batch_hops =
      obs::registry().counter("probe.batch.hops");
  std::uint64_t capacity = 0, high_water = 0;
  for (std::size_t mi = 0; mi < n_monitors; ++mi) {
    const util::Arena::Stats stats = shards_[mi]->arena.stats();
    capacity += stats.capacity_bytes;
    high_water += stats.high_water_bytes;
  }
  arena_capacity.max_of(static_cast<std::int64_t>(capacity));
  arena_high_water.max_of(static_cast<std::int64_t>(high_water));
  arena_resets.add(n_monitors);
  batch_traces.add(traces);
  batch_hops.add(hops);

  return snap;
}

dataset::MonthData CampaignRunner::month(int cycle) const {
  const Internet& internet = *internet_;
  dataset::MonthData month;
  month.cycle_id = static_cast<std::uint32_t>(cycle);
  month.date = cycle_date(cycle);

  MonthContext ctx = internet.instantiate(cycle, /*day_of_month=*/1, pool_);
  util::Rng dyn_rng(util::hash_combine(internet.config().seed,
                                       0xD1Aull + cycle));
  for (int s = 0; s <= config_.extra_snapshots; ++s) {
    if (s > 0) ctx.advance_dynamics(dyn_rng);
    month.snapshots.push_back(snapshot(ctx, cycle, s));
  }
  return month;
}

dataset::MonthData CampaignRunner::month(DeltaEvolver& evolver,
                                         int cycle) const {
  const Internet& internet = *internet_;
  dataset::MonthData month;
  month.cycle_id = static_cast<std::uint32_t>(cycle);
  month.date = cycle_date(cycle);

  MonthContext& ctx = evolver.evolve_to(cycle, /*day_of_month=*/1);
  util::Rng dyn_rng(util::hash_combine(internet.config().seed,
                                       0xD1Aull + cycle));
  for (int s = 0; s <= config_.extra_snapshots; ++s) {
    if (s > 0) ctx.advance_dynamics(dyn_rng);
    month.snapshots.push_back(snapshot(ctx, cycle, s));
  }
  return month;
}

std::vector<dataset::Snapshot> CampaignRunner::daily_month(int cycle,
                                                           int days) const {
  const Internet& internet = *internet_;
  std::vector<dataset::Snapshot> out;
  out.reserve(static_cast<std::size_t>(days));
  util::Rng dyn_rng(util::hash_combine(internet.config().seed,
                                       0xDA1ull + cycle));
  // One standing context for the whole month: deployment ramps are
  // day-resolved, but a day is a pristine rollback + profile re-evaluation
  // away — byte-identical to the per-day re-instantiate this replaces.
  MonthContext ctx = internet.instantiate(cycle, /*day_of_month=*/1, pool_);
  for (int day = 1; day <= days; ++day) {
    if (day > 1) {
      ctx.restore_pristine();
      ctx.set_day(day);
      ctx.apply_flaps(/*sub_index=*/0, internet.config().ecmp_flap_prob);
      ctx.advance_dynamics(dyn_rng);
    }

    CampaignConfig day_config = config_;
    // Fleet-size wobble (the paper notes "the number of considered
    // Archipelago vantage points differs from one day to another").
    const double wobble =
        0.7 + 0.3 * (static_cast<double>(util::mix64(
                         util::hash_combine(cycle, day)) %
                     1000) /
                     999.0);
    day_config.monitor_share = config_.monitor_share * wobble;

    dataset::Snapshot snap = snapshot(ctx, cycle, day - 1, day_config);
    snap.date = cycle_date(cycle) + (day < 10 ? "-0" : "-") +
                std::to_string(day);
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace mum::gen
