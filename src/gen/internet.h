// Synthetic internet: AS graph + router-level topologies for modelled
// transit ASes + per-month MPLS control planes + monitor/destination fleet.
//
// The Internet object is built once per study (topologies and the AS graph
// are time-invariant, as the paper observes for AS3356: "nothing has changed
// [infrastructurally] between Cycle 28 and Cycle 29 ... only the usage ...
// has been modified"). Per month, `instantiate()` materializes label pools,
// LDP/RSVP planes and data-plane configs from each AS's profile snapshot.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "dataset/ip2as.h"
#include "gen/as_graph.h"
#include "gen/profiles.h"
#include "igp/spf.h"
#include "mpls/ldp.h"
#include "mpls/rsvp.h"
#include "probe/forwarder.h"
#include "probe/traceroute.h"
#include "topo/topology.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mum::gen {

struct GenConfig {
  std::uint64_t seed = 20151028;  // IMC'15 opening day
  int background_tier1 = 3;
  int background_transit = 30;
  int stub_ases = 40;
  int monitors = 14;
  // /24 destinations probed by each monitor per snapshot.
  int dests_per_monitor = 880;
  // Each destination is probed by this many monitors (Ark teams overlap in
  // coverage across cycles; >1 exposes each transit AS from several ingress
  // directions, which is where IOTP diversity comes from).
  int dest_overlap = 4;
  // Addresses probed per destination /24. Additional addresses share the
  // FEC (forwarding treats the /24 as one prefix) but carry different Paris
  // flow identifiers — exactly what reveals ECMP branches inside one IOTP.
  int probes_per_dest = 2;
  // Per-snapshot probability that a router's ECMP salt flaps (routing noise
  // removed by the Persistence filter).
  double ecmp_flap_prob = 0.08;
  // Probability that an AS undergoes maintenance in a given month; inside a
  // maintenance month, each link fails with `link_fail_prob`, going down at
  // a random snapshot and staying down. The IGP reconverges around the
  // failure (per-snapshot SPF) and affected RSVP-TE LSPs are re-signalled —
  // this is the "routing changes during the measurement" noise the
  // Persistence filter exists to remove (paper Sec. 3.1).
  double as_maintenance_prob = 1.0;
  double link_fail_prob = 0.05;
  // Probability that a destination never answers (probe still traces).
  double dest_silent_prob = 0.08;
  // Probability a router answers probes (anonymous-router share follows).
  double router_response_prob = 0.96;
  // Probability that a modelled AS has one mis-originated /23 in the IP2AS
  // table (drives the small IntraAS filter hit, paper: ~0.9% of LSPs).
  double ip2as_noise = 0.25;

  // --- cycle-to-cycle churn ------------------------------------------------
  // Long-lived per-cycle topology deltas (distinct from the intra-month
  // maintenance failures above): every knob draws from pure functions of
  // (seed, asn, cycle), so a delta-evolved world and a from-scratch rebuild
  // of the same cycle are byte-identical (the DeltaEvolver oracle contract).
  struct Churn {
    double link_down_prob = 0.0;      // per (link, cycle): link out all month
    double metric_change_prob = 0.0;  // per (link, cycle): IGP cost override
    double router_down_prob = 0.0;    // per (router, cycle): all links down
    // Per (AS, cycle) probability of an LSP re-signalling epoch: every TE
    // LSP of the AS re-signals with fresh labels (Fig. 17 label motion).
    double te_resignal_prob = 0.0;

    bool any() const noexcept {
      return link_down_prob > 0.0 || metric_change_prob > 0.0 ||
             router_down_prob > 0.0 || te_resignal_prob > 0.0;
    }
  } churn;

  // --- scale knobs (`--scale routers=N,lsps=M`) ----------------------------
  // Targets for the synthetic world size. `scale_routers` grows the
  // background transit AS count with ~256-router shapes (per-AS state is
  // O(n^2), so scale the AS count, not the AS size); `scale_lsps` sets TE
  // density so the standing world carries at least that many TE LSPs.
  std::uint64_t scale_routers = 0;  // 0 = off
  std::uint64_t scale_lsps = 0;     // 0 = off
};

struct Destination {
  net::Ipv4Addr addr;
  std::uint32_t asn = 0;
};

// One modelled (router-level) AS.
struct ModeledAs {
  AsShape shape;
  topo::AsTopology topo;
  igp::IgpState igp;
  // Peering points with each neighbour AS: real networks interconnect at
  // several locations, so a neighbour maps to up to kPeeringPoints borders,
  // each with its own entry interface. Which one a given packet uses is a
  // stable function of the destination prefix (BGP next-hop selection).
  static constexpr int kPeeringPoints = 3;
  std::map<std::uint32_t, std::vector<topo::RouterId>> borders_toward;
  std::map<std::uint32_t, std::vector<net::Ipv4Addr>> entry_ifaces_from;

  // Border router / entry iface serving `neighbor` for a destination whose
  // /24 hashes to `dst_hash`.
  topo::RouterId border_for(std::uint32_t neighbor,
                            std::uint64_t dst_hash) const;
  net::Ipv4Addr entry_iface_for(std::uint32_t neighbor,
                                std::uint64_t dst_hash) const;

  ModeledAs(AsShape s, topo::AsTopology t, igp::IgpState i)
      : shape(std::move(s)), topo(std::move(t)), igp(std::move(i)) {}
};

// Per-month mutable control-plane state of one AS.
struct AsPlanes {
  std::vector<mpls::LabelPool> pools;
  std::optional<mpls::LdpPlane> ldp;
  std::unique_ptr<mpls::RsvpTePlane> rsvp;
  // IGP state after this snapshot's link failures (unset => no failures,
  // plane.igp points at the cycle-converged state below, or the ModeledAs
  // base state when this cycle's overlay is trivial).
  std::optional<igp::IgpState> igp_now;
  probe::AsDataPlane plane;  // pointers reference ModeledAs + this struct

  // --- cycle-evolution state (DeltaEvolver / MonthContext reuse) -----------
  ProfileSnapshot profile;    // profile these planes were built from
  igp::LinkOverlay overlay;   // this cycle's persistent link deltas
  // IGP converged under `overlay` (unset when the overlay is trivial; the
  // base ModeledAs::igp is then the cycle state). TE LSPs signal over this.
  std::optional<igp::IgpState> igp_cycle;
  std::uint32_t label_epoch = 0;  // TE re-signalling epochs up to this cycle
  // Label-counter snapshots: after the LDP build (the base TE-only rebuilds
  // restart from) and after the full pristine build (what restore_pristine
  // rewinds to, undoing intra-month re-signalling draws).
  std::vector<mpls::LabelPool::State> pools_after_ldp;
  std::vector<mpls::LabelPool::State> pools_pristine;

  // The IGP state this cycle's routes are computed against.
  const igp::IgpState& cycle_igp(const ModeledAs& as) const noexcept {
    return igp_cycle ? *igp_cycle : as.igp;
  }
};

class Internet;
class DeltaEvolver;

// True when a profile transition requires rebuilding the AS's LDP plane and
// label pools from scratch (fields that change LDP label content).
bool ldp_structural_changed(const ProfileSnapshot& a, const ProfileSnapshot& b);
// True when a profile transition requires re-signalling the AS's RSVP-TE
// plane (fields that change the TE LSP set or its label draws).
bool te_structural_changed(const ProfileSnapshot& a, const ProfileSnapshot& b);

// The control planes of every modelled AS for one month, plus snapshot-level
// observation state (ECMP flaps, coverage ramp days).
class MonthContext {
 public:
  // Re-signals TE LSPs of dynamic-label ASes (between snapshots).
  void advance_dynamics(util::Rng& rng);
  // Sets per-router ECMP salts for snapshot `sub_index` (0 = cycle run).
  void apply_flaps(int sub_index, double flap_prob);

  const probe::AsDataPlane* plane_of(std::uint32_t asn) const;

  int cycle() const noexcept { return cycle_; }

  // --- standing-world reuse (DeltaEvolver, daily_month) --------------------
  // Rolls every AS back to its pristine start-of-month control-plane state:
  // undoes flap re-signalling, dynamics re-optimization and failure state,
  // rewinds label-pool counters, and resets per-cycle scratch arenas. After
  // this, the context is byte-equivalent to a freshly instantiated month
  // just before its initial apply_flaps(0).
  void restore_pristine();
  // Re-evaluates profiles at (cycle, day_of_month): ASes whose structural
  // knobs changed are rebuilt (deployment ramps are day-resolved); cheap
  // observation scalars are updated in place. Call on a pristine context.
  void set_day(int day_of_month);

 private:
  friend class Internet;
  friend class DeltaEvolver;
  int cycle_ = 0;
  std::uint64_t month_seed_ = 0;
  std::map<std::uint32_t, std::unique_ptr<AsPlanes>> planes_;
  const Internet* internet_ = nullptr;
  // Pool for per-source SPF parallelism inside reconvergence (nullable).
  util::ThreadPool* pool_ = nullptr;
};

class Internet {
 public:
  // When `pool` is given, the per-AS IGP all-pairs SPF runs its sources in
  // parallel during construction; the built state is byte-identical either
  // way (per-source rows merge in index order).
  explicit Internet(const GenConfig& config,
                    util::ThreadPool* pool = nullptr);

  const GenConfig& config() const noexcept { return config_; }
  const AsGraph& graph() const noexcept { return graph_; }
  const std::vector<probe::Monitor>& monitors() const noexcept {
    return monitors_;
  }
  const std::vector<Destination>& destinations() const noexcept {
    return destinations_;
  }
  const ModeledAs* modeled(std::uint32_t asn) const;
  std::vector<std::uint32_t> modeled_asns() const;

  // Routeviews-equivalent table (with the configured mis-origination noise).
  dataset::Ip2As build_ip2as() const;

  // Materialize control planes for (cycle, day-of-month). `pool`, when
  // given, parallelizes the IGP reconvergence SPFs triggered by link
  // failures (output identical at any thread count).
  MonthContext instantiate(int cycle, int day_of_month = 1,
                           util::ThreadPool* pool = nullptr) const;

  // Path from a monitor to a destination through `ctx`'s planes; nullopt
  // when AS-level routing fails.
  std::optional<probe::PathSpec> path_spec(const probe::Monitor& monitor,
                                           const Destination& dest,
                                           const MonthContext& ctx) const;

  // Scratch-reusing form for the per-probe hot loop: refills scratch.path
  // (vector capacities kept, so steady state performs no heap allocation)
  // and returns false when AS-level routing fails. Equivalent to the
  // allocating overload above.
  struct PathScratch {
    probe::PathSpec path;
    std::vector<std::uint32_t> as_path;
  };
  bool path_spec(const probe::Monitor& monitor, const Destination& dest,
                 const MonthContext& ctx, PathScratch& scratch) const;

  // AS hosting monitor `id`.
  std::uint32_t monitor_asn(std::uint32_t monitor_id) const {
    return monitor_asn_.at(monitor_id);
  }

  // Persistent link/metric/router deltas of `asn` at `cycle`: a pure
  // function of (seed, asn, cycle), identical whether the cycle is reached
  // by delta evolution or from-scratch instantiation. Canonical form: the
  // trivial overlay is {} (empty vectors).
  igp::LinkOverlay overlay_at(const ModeledAs& as, std::uint32_t asn,
                              int cycle) const;
  // Number of TE re-signalling epochs of `asn` up to and including `cycle`
  // (monotone in cycle; pure function of seed/asn/cycle).
  std::uint32_t label_epoch_at(std::uint32_t asn, int cycle) const;

 private:
  friend class MonthContext;
  friend class DeltaEvolver;

  void build_graph(util::Rng& rng);
  void build_topologies(util::Rng& rng, util::ThreadPool* pool);
  void place_monitors_and_destinations(util::Rng& rng);

  // Full per-AS control-plane build for `profile`: pools (with the epoch
  // label burn), LDP, RSVP-TE signalled over the cycle IGP, scalar fields,
  // and the pristine snapshots. Expects planes.overlay / planes.igp_cycle /
  // planes.label_epoch already set for the target cycle.
  void build_as_planes(std::uint32_t asn, const ModeledAs& as,
                       const ProfileSnapshot& profile, AsPlanes& planes,
                       util::ThreadPool* pool) const;
  // TE-only rebuild: rewinds pools to the post-LDP snapshot, replays the
  // epoch burn, and re-signals the RSVP-TE plane; the LDP plane and its
  // label content are untouched.
  void build_te_planes(std::uint32_t asn, const ModeledAs& as,
                       const ProfileSnapshot& profile, AsPlanes& planes) const;
  // Updates the cheap per-snapshot observation scalars from `profile`.
  static void apply_profile_scalars(const ProfileSnapshot& profile,
                                    AsPlanes& planes);

  GenConfig config_;
  AsGraph graph_;
  std::map<std::uint32_t, std::unique_ptr<ModeledAs>> modeled_;
  std::vector<probe::Monitor> monitors_;
  std::vector<std::uint32_t> monitor_asn_;  // by monitor id
  std::vector<Destination> destinations_;
};

}  // namespace mum::gen
