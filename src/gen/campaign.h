// Archipelago-style probing campaigns over the synthetic internet.
//
// A snapshot = one run of the monitor fleet (each monitor probes its share of
// the destination list, Paris-traceroute style). A month = the cycle snapshot
// plus `extra_snapshots` follow-up runs (consumed by the Persistence filter),
// with routing flaps applied between runs and TE label dynamics advanced for
// dynamic-label ASes. Daily generation (Fig. 16) exposes day-of-month so
// profile ramps and fleet-size variation can play out.
//
// CampaignRunner is the entry point: it holds the campaign configuration
// once and generates snapshots with the monitor fleet fanned out over an
// optional thread pool. Determinism contract: every monitor draws its
// observation noise from an RNG stream keyed by (seed, cycle, sub_index,
// monitor), and per-monitor trace blocks are concatenated in monitor order —
// so output is bit-identical no matter how many threads execute it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dataset/ip2as.h"
#include "dataset/trace.h"
#include "dataset/trace_batch.h"
#include "gen/evolve.h"
#include "gen/internet.h"
#include "util/thread_pool.h"

namespace mum::gen {

struct CampaignConfig {
  int extra_snapshots = 2;  // snapshots X+1..X+j generated per month
  probe::TraceOptions trace;
  // Fraction of the monitor fleet active (varies day-to-day in Fig. 16).
  double monitor_share = 1.0;
  // Measurement path. On (the default), each monitor writes an arena-backed
  // SoA dataset::TraceBatch shard and shards merge column-wise in monitor
  // order; snapshot() materializes heap Traces from the merged batch. Off
  // runs the original heap-Trace path. Output is byte-identical either way
  // — the heap path is the batch path's oracle (tests/test_batch.cpp).
  bool batch = true;
};

class CampaignRunner {
 public:
  // References (not copies) the internet and ip2as table; both must outlive
  // the runner. `pool` is optional shared parallelism — null means serial.
  CampaignRunner(const Internet& internet, const dataset::Ip2As& ip2as,
                 CampaignConfig config = {},
                 util::ThreadPool* pool = nullptr);
  ~CampaignRunner();  // out-of-line: MonitorShard is incomplete here
  CampaignRunner(CampaignRunner&&) noexcept;
  CampaignRunner& operator=(CampaignRunner&&) noexcept;

  const CampaignConfig& config() const noexcept { return config_; }
  const Internet& internet() const noexcept { return *internet_; }

  // One snapshot at (cycle, sub_index). `ctx` must come from
  // internet.instantiate(); flaps for `sub_index` are applied inside.
  // Traces are ip2as-annotated.
  dataset::Snapshot snapshot(MonthContext& ctx, int cycle,
                             int sub_index) const;
  // Same, with a per-call config override (daily fleet-size wobble).
  dataset::Snapshot snapshot(MonthContext& ctx, int cycle, int sub_index,
                             const CampaignConfig& config) const;

  // Columnar form of snapshot(): monitors probe into per-shard arena
  // batches (cached on the runner and reset between snapshots, so the
  // steady state of a month allocates nothing in the probe loop), merged
  // column-wise in monitor order and ip2as-annotated. snapshot() with
  // config.batch on is exactly this plus to_snapshot().
  //
  // Like snapshot(), not safe to call concurrently on one runner (both
  // mutate `ctx`; this one also reuses the runner's shard arenas).
  dataset::SnapshotBatch snapshot_batch(MonthContext& ctx, int cycle,
                                        int sub_index) const;
  dataset::SnapshotBatch snapshot_batch(MonthContext& ctx, int cycle,
                                        int sub_index,
                                        const CampaignConfig& config) const;

  // Full month: cycle snapshot + extra snapshots, advancing label dynamics
  // between runs.
  dataset::MonthData month(int cycle) const;
  // Same month, generated against `evolver`'s standing world instead of a
  // from-scratch instantiate. Byte-identical to `month(cycle)` (the
  // DeltaEvolver oracle contract), but cycle N+1 is a mutation of cycle N.
  dataset::MonthData month(DeltaEvolver& evolver, int cycle) const;

  // Daily data for one month (Fig. 16): `days` snapshots, profile evaluated
  // at each day, fleet size wobbling deterministically around the configured
  // share.
  std::vector<dataset::Snapshot> daily_month(int cycle, int days) const;

 private:
  // Per-monitor probe scratch: an arena the shard's TraceBatch carves from
  // plus a reusable forwarder walk buffer. Cached across snapshots so arena
  // high-water stabilizes after the first snapshot (the soak test gates
  // this via the probe.arena.* gauges).
  struct MonitorShard;

  const Internet* internet_;
  const dataset::Ip2As* ip2as_;
  CampaignConfig config_;
  util::ThreadPool* pool_;
  mutable std::vector<std::unique_ptr<MonitorShard>> shards_;
  // Warm addr -> asn memo shared by every snapshot of the campaign (the
  // ip2as table is fixed for the runner's lifetime). Same non-reentrancy
  // contract as shards_: one snapshot_batch at a time per runner.
  mutable dataset::AsnCache asn_cache_;
};

}  // namespace mum::gen
