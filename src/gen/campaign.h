// Archipelago-style probing campaigns over the synthetic internet.
//
// A snapshot = one run of the monitor fleet (each monitor probes its share of
// the destination list, Paris-traceroute style). A month = the cycle snapshot
// plus `extra_snapshots` follow-up runs (consumed by the Persistence filter),
// with routing flaps applied between runs and TE label dynamics advanced for
// dynamic-label ASes. Daily generation (Fig. 16) exposes day-of-month so
// profile ramps and fleet-size variation can play out.
#pragma once

#include <cstdint>
#include <vector>

#include "dataset/trace.h"
#include "gen/internet.h"

namespace mum::gen {

struct CampaignConfig {
  int extra_snapshots = 2;  // snapshots X+1..X+j generated per month
  probe::TraceOptions trace;
  // Fraction of the monitor fleet active (varies day-to-day in Fig. 16).
  double monitor_share = 1.0;
};

// One snapshot at (cycle, day). `ctx` must come from internet.instantiate();
// flaps for `sub_index` are applied inside. Traces are ip2as-annotated.
dataset::Snapshot generate_snapshot(const Internet& internet,
                                    MonthContext& ctx,
                                    const dataset::Ip2As& ip2as, int cycle,
                                    int sub_index,
                                    const CampaignConfig& config);

// Full month: cycle snapshot + extra snapshots, advancing label dynamics
// between runs.
dataset::MonthData generate_month(const Internet& internet,
                                  const dataset::Ip2As& ip2as, int cycle,
                                  const CampaignConfig& config);

// Daily data for one month (Fig. 16): `days` snapshots, profile evaluated at
// each day, fleet size wobbling deterministically around the configured
// share.
std::vector<dataset::Snapshot> generate_daily_month(
    const Internet& internet, const dataset::Ip2As& ip2as, int cycle,
    int days, const CampaignConfig& config);

}  // namespace mum::gen
