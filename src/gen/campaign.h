// Archipelago-style probing campaigns over the synthetic internet.
//
// A snapshot = one run of the monitor fleet (each monitor probes its share of
// the destination list, Paris-traceroute style). A month = the cycle snapshot
// plus `extra_snapshots` follow-up runs (consumed by the Persistence filter),
// with routing flaps applied between runs and TE label dynamics advanced for
// dynamic-label ASes. Daily generation (Fig. 16) exposes day-of-month so
// profile ramps and fleet-size variation can play out.
//
// CampaignRunner is the entry point: it holds the campaign configuration
// once and generates snapshots with the monitor fleet fanned out over an
// optional thread pool. Determinism contract: every monitor draws its
// observation noise from an RNG stream keyed by (seed, cycle, sub_index,
// monitor), and per-monitor trace blocks are concatenated in monitor order —
// so output is bit-identical no matter how many threads execute it.
#pragma once

#include <cstdint>
#include <vector>

#include "dataset/trace.h"
#include "gen/evolve.h"
#include "gen/internet.h"
#include "util/thread_pool.h"

namespace mum::gen {

struct CampaignConfig {
  int extra_snapshots = 2;  // snapshots X+1..X+j generated per month
  probe::TraceOptions trace;
  // Fraction of the monitor fleet active (varies day-to-day in Fig. 16).
  double monitor_share = 1.0;
};

class CampaignRunner {
 public:
  // References (not copies) the internet and ip2as table; both must outlive
  // the runner. `pool` is optional shared parallelism — null means serial.
  CampaignRunner(const Internet& internet, const dataset::Ip2As& ip2as,
                 CampaignConfig config = {},
                 util::ThreadPool* pool = nullptr);

  const CampaignConfig& config() const noexcept { return config_; }
  const Internet& internet() const noexcept { return *internet_; }

  // One snapshot at (cycle, sub_index). `ctx` must come from
  // internet.instantiate(); flaps for `sub_index` are applied inside.
  // Traces are ip2as-annotated.
  dataset::Snapshot snapshot(MonthContext& ctx, int cycle,
                             int sub_index) const;
  // Same, with a per-call config override (daily fleet-size wobble).
  dataset::Snapshot snapshot(MonthContext& ctx, int cycle, int sub_index,
                             const CampaignConfig& config) const;

  // Full month: cycle snapshot + extra snapshots, advancing label dynamics
  // between runs.
  dataset::MonthData month(int cycle) const;
  // Same month, generated against `evolver`'s standing world instead of a
  // from-scratch instantiate. Byte-identical to `month(cycle)` (the
  // DeltaEvolver oracle contract), but cycle N+1 is a mutation of cycle N.
  dataset::MonthData month(DeltaEvolver& evolver, int cycle) const;

  // Daily data for one month (Fig. 16): `days` snapshots, profile evaluated
  // at each day, fleet size wobbling deterministically around the configured
  // share.
  std::vector<dataset::Snapshot> daily_month(int cycle, int days) const;

 private:
  const Internet* internet_;
  const dataset::Ip2As* ip2as_;
  CampaignConfig config_;
  util::ThreadPool* pool_;
};

}  // namespace mum::gen
