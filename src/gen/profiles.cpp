#include "gen/profiles.h"

#include <algorithm>

namespace mum::gen {

namespace {

double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

// Linear ramp from `from` to `to` as cycle goes a -> b.
double ramp(int cycle, int a, int b, double from, double to) {
  if (cycle <= a) return from;
  if (cycle >= b) return to;
  const double f = static_cast<double>(cycle - a) / static_cast<double>(b - a);
  return from + f * (to - from);
}

ProfileSnapshot base_ldp() {
  ProfileSnapshot p;
  p.mpls_enabled = true;
  p.ldp = true;
  return p;
}

// --- Case-study timelines (paper Sec. 4.4) -----------------------------

// AS1273 Vodafone: MPLS (transit) usage grows over time; Multi-FEC
// dominates and grows at the expense of Mono-LSP; ECMP almost invisible;
// labels churn at high frequency (Fig. 17) => dynamic tag.
ProfileSnapshot vodafone_at(int cycle) {
  ProfileSnapshot p = base_ldp();
  p.mpls_coverage = ramp(cycle, 0, 50, 0.35, 0.7);
  // RSVP-TE everywhere from the start (so the whole tunnel set churns and
  // the Persistence filter triggers the dynamic tag); what grows over the
  // years is the number of LSPs per LER pair — the Multi-FEC share rises
  // at the expense of Mono-LSP, as Fig. 10 shows.
  p.te_pair_share = 0.92;
  p.te_lsps_min = cycle < 24 ? 1 : 2;
  p.te_lsps_max = 2 + cycle / 15;  // 2 .. 5
  p.te_share = 0.95;
  p.te_diverse_route_prob = 0.15;  // TE LSPs mostly share the IP route
  p.dynamic_labels = true;
  return p;
}

// AS7018 AT&T: MPLS share of the (large) network declines relatively; the
// classification shifts from Mono-FEC (ECMP) toward Multi-FEC; IOTP count
// drops around cycle 22 (a transition in usage).
ProfileSnapshot att_at(int cycle) {
  ProfileSnapshot p = base_ldp();
  p.fec_all_loopbacks = true;
  const bool after_transition = cycle >= 22;
  p.mpls_coverage = after_transition ? ramp(cycle, 22, 59, 0.22, 0.16)
                                     : ramp(cycle, 0, 21, 0.34, 0.32);
  p.te_pair_share = ramp(cycle, 10, 55, 0.05, 0.75);
  p.te_lsps_min = 2;
  p.te_lsps_max = 4;
  p.te_share = 0.85;
  p.te_diverse_route_prob = 0.3;
  return p;
}

// AS6453 Tata: almost no Multi-FEC; strong (though slowly declining)
// Mono-FEC share with 60-70% of it riding parallel links.
ProfileSnapshot tata_at(int cycle) {
  ProfileSnapshot p = base_ldp();
  p.mpls_coverage = ramp(cycle, 0, 59, 0.62, 0.4);
  p.te_pair_share = 0.02;
  p.te_share = 0.5;
  return p;
}

// AS2914 NTT: MPLS usage grows (IOTP count ~ triples); class mix stays
// mostly Mono-LSP with a slight late shift toward Mono-FEC.
ProfileSnapshot ntt_at(int cycle) {
  ProfileSnapshot p = base_ldp();
  p.mpls_coverage = ramp(cycle, 0, 59, 0.2, 0.7);
  // The IOTP population triples over the period because MPLS is enabled on
  // more and more LERs (Table 2's growing MPLS IP counts).
  p.ler_share = ramp(cycle, 0, 59, 0.25, 0.95);
  p.te_pair_share = 0.0;
  return p;
}

// AS3356 Level3: no (visible) MPLS until the April-2012 rollout, deployed
// incrementally from the 15th of that month; stable afterwards; sharp
// decline from cycle 55 (1-based) on.
ProfileSnapshot level3_at(int cycle, int day_of_month) {
  ProfileSnapshot p = base_ldp();
  p.fec_all_loopbacks = true;
  const int ramp_cycle = cycle_of(2012, 4);  // April 2012
  const int decline_cycle = 54;              // 0-based == paper's cycle 55
  if (cycle < ramp_cycle) {
    p.mpls_enabled = false;
    p.mpls_coverage = 0.0;
  } else if (cycle == ramp_cycle) {
    // Incremental intra-month rollout: nothing before the 15th, full
    // deployment by the end of the month (Fig. 16).
    p.mpls_coverage = clamp01((day_of_month - 15) / 14.0);
    p.mpls_enabled = p.mpls_coverage > 0.0;
  } else if (cycle >= decline_cycle) {
    p.mpls_coverage = ramp(cycle, decline_cycle, 57, 0.3, 0.015);
  } else {
    p.mpls_coverage = 0.55;
  }
  p.te_pair_share = 0.04;
  p.te_share = 0.5;
  return p;
}

}  // namespace

std::string cycle_date(int cycle) {
  const int year = kFirstYear + cycle / 12;
  const int month = 1 + cycle % 12;
  std::string out = std::to_string(year);
  out += month < 10 ? "-0" : "-";
  out += std::to_string(month);
  return out;
}

int cycle_of(int year, int month) {
  return (year - kFirstYear) * 12 + (month - 1);
}

ProfileSnapshot profile_at(std::uint32_t asn, const AsShape& shape, int cycle,
                           int day_of_month) {
  switch (asn) {
    case kAsnVodafone: return vodafone_at(cycle);
    case kAsnAtt: return att_at(cycle);
    case kAsnTata: return tata_at(cycle);
    case kAsnNtt: return ntt_at(cycle);
    case kAsnLevel3: return level3_at(cycle, day_of_month);
    default: break;
  }

  ProfileSnapshot p;
  if (shape.archetype == MplsArchetype::kNoMpls || cycle < shape.adopt_cycle ||
      cycle >= shape.retire_cycle) {
    return p;  // MPLS off
  }
  p = base_ldp();
  // Deployments mature over ~a year after adoption.
  const int a = std::max(shape.adopt_cycle, 0);
  p.mpls_coverage = ramp(cycle, a, a + 12, 0.12, 0.42);
  switch (shape.archetype) {
    case MplsArchetype::kLdpMono:
      break;  // diversity (or lack of it) comes from the topology
    case MplsArchetype::kLdpEcmp:
      p.fec_all_loopbacks = true;
      // A third of the ECMP-style deployments tunnel their LDP traffic
      // over RSVP hub tunnels in the core (visible as 2-entry stacks).
      if (asn % 3 == 0) p.ldp_over_te_share = 0.4;
      break;
    case MplsArchetype::kTeMixed:
      p.te_pair_share = ramp(cycle, a, a + 18, 0.1, 0.5);
      p.te_lsps_min = 2;
      p.te_lsps_max = 3;
      p.te_share = 0.8;
      // Half the TE deployments protect their LSPs with fast reroute.
      p.te_frr = (asn % 2) == 0;
      break;
    case MplsArchetype::kTeDynamic:
      p.te_pair_share = 0.7;
      p.te_share = 0.9;
      p.dynamic_labels = true;
      break;
    case MplsArchetype::kNoMpls:
      break;  // unreachable
  }
  if (shape.te_pair_share_override >= 0.0 && shape.te_lsps_override > 0) {
    // Scaled worlds pin TE density (the fleet-wide LSP target) and keep the
    // per-cycle signalling cost predictable: no FRR backups, no per-snapshot
    // re-optimization.
    p.te_pair_share = shape.te_pair_share_override;
    p.te_lsps_min = shape.te_lsps_override;
    p.te_lsps_max = shape.te_lsps_override;
    p.te_frr = false;
    p.dynamic_labels = false;
  }
  return p;
}

AsShape case_study_shape(std::uint32_t asn) {
  AsShape shape;
  auto& t = shape.topo;
  t.asn = asn;
  switch (asn) {
    case kAsnVodafone:
      // Small transit network; sparse topology => essentially no ECMP, so
      // the diversity that shows is Multi-FEC (RSVP-TE).
      shape.archetype = MplsArchetype::kTeDynamic;
      t.core_routers = 6;
      t.pop_routers = 12;
      t.border_share = 0.6;
      t.juniper_share = 0.95;  // Fig. 17 dynamics are Juniper-flavoured
      t.parallel_link_prob = 0.0;
      t.shortcut_share = 0.0;
      t.core_chord_prob = 0.08;
      t.uniform_costs = false;  // unique shortest paths
      break;
    case kAsnAtt:
      // Very large network, moderate ECMP.
      shape.archetype = MplsArchetype::kTeMixed;
      t.core_routers = 14;
      t.pop_routers = 60;
      t.border_share = 0.45;
      t.juniper_share = 0.3;
      t.parallel_link_prob = 0.28;
      t.heavy_cost_share = 0.2;
      t.shortcut_share = 0.15;
      t.core_chord_prob = 0.08;
      t.uniform_costs = true;
      break;
    case kAsnTata:
      // ECMP-rich with heavy link bundling (parallel links dominate).
      shape.archetype = MplsArchetype::kLdpEcmp;
      t.core_routers = 10;
      t.pop_routers = 26;
      t.border_share = 0.5;
      t.juniper_share = 0.4;
      t.parallel_link_prob = 0.6;
      t.max_parallel_links = 3;
      t.shortcut_share = 0.12;
      t.core_chord_prob = 0.08;
      t.uniform_costs = true;
      // Bias ECMP toward bundles: cost noise breaks most router-level ties,
      // so the diversity that remains is mostly Parallel Links (Fig. 13).
      t.heavy_cost_share = 0.5;
      break;
    case kAsnNtt:
      // Mostly unique shortest paths => Mono-LSP; mild late-period ECMP.
      shape.archetype = MplsArchetype::kLdpMono;
      t.core_routers = 10;
      t.pop_routers = 24;
      t.border_share = 0.5;
      t.juniper_share = 0.5;
      t.parallel_link_prob = 0.07;
      t.shortcut_share = 0.15;
      t.core_chord_prob = 0.08;
      t.uniform_costs = false;
      break;
    case kAsnLevel3:
      // Large network, ECMP-rich (Mono-FEC once MPLS appears).
      shape.archetype = MplsArchetype::kLdpEcmp;
      t.core_routers = 12;
      t.pop_routers = 48;
      t.border_share = 0.5;
      t.juniper_share = 0.35;
      t.parallel_link_prob = 0.3;
      t.shortcut_share = 0.12;
      t.core_chord_prob = 0.08;
      t.uniform_costs = true;
      t.heavy_cost_share = 0.3;
      break;
    default:
      break;
  }
  return shape;
}

AsShape background_shape(std::uint32_t asn, int index, util::Rng& rng) {
  AsShape shape;
  auto& t = shape.topo;
  t.asn = asn;

  // Background Tier-1s (ASN < 200) carry a large share of transit traffic;
  // keep them mono-path-ish so the global class mix stays Mono-LSP-heavy
  // (paper: ~56% of IOTPs have width 1).
  if (asn < 200) {
    t.core_routers = 8 + static_cast<int>(rng.below(3));
    t.pop_routers = 20 + static_cast<int>(rng.below(10));
    t.border_share = 0.5;
    t.juniper_share = rng.uniform01();
    t.shortcut_share = rng.uniform01() * 0.15;
    t.core_chord_prob = 0.08;
    switch (asn % 3) {
      case 0:
        shape.archetype = MplsArchetype::kLdpMono;
        t.uniform_costs = false;
        t.parallel_link_prob = 0.02;
        break;
      case 1:
        shape.archetype = MplsArchetype::kNoMpls;
        break;
      default:
        shape.archetype = MplsArchetype::kTeMixed;
        t.uniform_costs = false;
        t.parallel_link_prob = 0.05;
        break;
    }
    if (shape.archetype != MplsArchetype::kNoMpls) {
      shape.adopt_cycle = rng.chance(0.5) ? -1 : static_cast<int>(rng.below(36));
    }
    return shape;
  }
  t.core_routers = 5 + static_cast<int>(rng.below(6));
  t.pop_routers = 8 + static_cast<int>(rng.below(16));
  t.border_share = 0.35 + rng.uniform01() * 0.3;
  t.juniper_share = rng.uniform01();
  t.shortcut_share = rng.uniform01() * 0.15;
  t.core_chord_prob = 0.06 + rng.uniform01() * 0.08;

  // Archetype mix tuned so that, globally, LDP (with and without ECMP)
  // dominates and TE stays ~20% of IOTPs (paper Fig. 6(b)).
  const double draw = rng.uniform01();
  if (draw < 0.48) {
    shape.archetype = MplsArchetype::kNoMpls;
  } else if (draw < 0.74) {
    shape.archetype = MplsArchetype::kLdpMono;
    t.uniform_costs = false;
    t.parallel_link_prob = 0.02;
  } else if (draw < 0.84) {
    shape.archetype = MplsArchetype::kLdpEcmp;
    t.uniform_costs = true;
    t.parallel_link_prob = 0.1 + rng.uniform01() * 0.3;
    t.heavy_cost_share = 0.15 + rng.uniform01() * 0.2;
  } else if (draw < 0.95) {
    shape.archetype = MplsArchetype::kTeMixed;
    t.uniform_costs = rng.chance(0.5);
    t.parallel_link_prob = rng.uniform01() * 0.2;
  } else {
    shape.archetype = MplsArchetype::kTeDynamic;
    t.uniform_costs = false;
    t.juniper_share = 0.9;
  }

  // Staggered adoption dates drive the global growth of Fig. 5; a few ASes
  // adopt before the observation window, a few late, a couple retire.
  if (shape.archetype != MplsArchetype::kNoMpls) {
    shape.adopt_cycle =
        rng.chance(0.45) ? -1 : static_cast<int>(rng.below(48));
    if (rng.chance(0.08)) {
      shape.retire_cycle = 45 + static_cast<int>(rng.below(15));
    }
  }
  (void)index;
  return shape;
}

}  // namespace mum::gen
