// Per-AS MPLS deployment profiles and their evolution over the 60 monthly
// cycles (January 2010 .. December 2014).
//
// A profile snapshot says, for one AS at one point in time, how MPLS is
// configured: whether LDP and/or RSVP-TE run, which share of destination
// prefixes is labelled, how many TE LSPs a LER pair gets, whether labels
// churn ("dynamic" ASes), and which visibility options (ttl-propagate,
// RFC 4950) are on. The five case-study ASes of the paper's Sec. 4.4 are
// scripted so their longitudinal stories can be regenerated; background
// transit ASes draw an archetype + adoption date from a seeded RNG.
#pragma once

#include <cstdint>
#include <string>

#include "topo/builder.h"
#include "util/rng.h"

namespace mum::gen {

// Well-known ASNs used by the case studies (paper Figs. 10-16, Table 2).
inline constexpr std::uint32_t kAsnVodafone = 1273;
inline constexpr std::uint32_t kAsnAtt = 7018;
inline constexpr std::uint32_t kAsnTata = 6453;
inline constexpr std::uint32_t kAsnNtt = 2914;
inline constexpr std::uint32_t kAsnLevel3 = 3356;

inline constexpr int kCycles = 60;            // Jan 2010 .. Dec 2014
inline constexpr int kFirstYear = 2010;

// "YYYY-MM" for a 0-based cycle index.
std::string cycle_date(int cycle);
// 0-based cycle index of a (year, month).
int cycle_of(int year, int month);

// Deployment archetypes. Case-study ASes get bespoke timelines; background
// ASes get one of these.
enum class MplsArchetype : std::uint8_t {
  kNoMpls,        // plain IP transit
  kLdpMono,       // LDP, topology with unique shortest paths => Mono-LSP
  kLdpEcmp,       // LDP over rich ECMP => Mono-FEC (disjoint + parallel)
  kTeMixed,       // LDP base + RSVP-TE on a share of LER pairs
  kTeDynamic,     // RSVP-TE with frequent re-optimization (dynamic labels)
};

struct ProfileSnapshot {
  bool mpls_enabled = false;
  double mpls_coverage = 1.0;   // share of labelled destination prefixes
  // Share of border routers acting as MPLS ingress LERs (deployment
  // breadth; rollouts enable LERs incrementally, which is what grows the
  // IOTP population of an AS over time).
  double ler_share = 1.0;
  bool ldp = true;
  bool php = true;
  bool ttl_propagate = true;    // off => invisible/implicit tunnels
  bool rfc4950 = true;
  bool fec_all_loopbacks = false;  // Cisco-style LDP default
  // RSVP-TE knobs.
  double te_pair_share = 0.0;   // share of border pairs carrying TE LSPs
  int te_lsps_min = 2;
  int te_lsps_max = 4;
  double te_share = 0.9;        // share of prefixes steered into TE LSPs
  double te_diverse_route_prob = 0.25;
  // RFC 4090 fast reroute: failures switch LSPs to pre-signalled backups
  // (stable labels) instead of re-signalling with fresh ones.
  bool te_frr = false;
  // LDP-over-RSVP: share of <ingress, egress> pairs whose LDP traffic rides
  // a TE hub tunnel into the core (2-entry label stacks on the wire).
  double ldp_over_te_share = 0.0;
  bool dynamic_labels = false;  // re-signal between snapshots (Sec. 4.5)
};

// Static (time-invariant) shape of an AS: topology sizing knobs.
struct AsShape {
  topo::BuildParams topo;
  MplsArchetype archetype = MplsArchetype::kNoMpls;
  // Background ASes: cycle at which MPLS turns on (-1 = from the start,
  // kCycles = never) and optional cycle at which it turns off.
  int adopt_cycle = -1;
  int retire_cycle = kCycles + 1;

  // --- scale-campaign overrides (set by the Internet `--scale` knobs) ------
  // When `scaled`, the TE overrides (if >= 0 / > 0) pin the pair share and
  // per-pair LSP count so the fleet hits a global TE LSP target.
  bool scaled = false;
  double te_pair_share_override = -1.0;
  int te_lsps_override = -1;
};

// Profile of one AS at (cycle, day_of_month). The day matters only for ramp
// months (Fig. 16: Level3 deploys incrementally across April 2012).
ProfileSnapshot profile_at(std::uint32_t asn, const AsShape& shape, int cycle,
                           int day_of_month = 1);

// Topology + archetype for the five case-study ASes.
AsShape case_study_shape(std::uint32_t asn);

// Topology + archetype for a background transit AS (index-seeded draws).
AsShape background_shape(std::uint32_t asn, int index, util::Rng& rng);

}  // namespace mum::gen
