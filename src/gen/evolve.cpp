#include "gen/evolve.h"

#include <utility>
#include <vector>

#include "gen/profiles.h"
#include "obs/telemetry.h"
#include "util/rng.h"

namespace mum::gen {

MonthContext& DeltaEvolver::evolve_to(int cycle, int day_of_month) {
  if (!ctx_ || poisoned_ || cycle < ctx_->cycle()) {
    full_build(cycle, day_of_month);
    return *ctx_;
  }
  if (cycle == ctx_->cycle() && day_of_month == day_) return *ctx_;
  try {
    step_to(cycle, day_of_month);
  } catch (...) {
    poisoned_ = true;
  }
  if (poisoned_) full_build(cycle, day_of_month);
  return *ctx_;
}

void DeltaEvolver::full_build(int cycle, int day_of_month) {
  ctx_.emplace(internet_->instantiate(cycle, day_of_month, pool_));
  day_ = day_of_month;
  poisoned_ = false;
  stats_ = CycleDeltaStats{};
  stats_.cycle = cycle;
  stats_.full_build = true;
  stats_.ases_total = ctx_->planes_.size();
  stats_.ases_rebuilt = ctx_->planes_.size();
  obs::registry().counter("evolve.full_builds").add(1);
}

void DeltaEvolver::step_to(int cycle, int day_of_month) {
  MonthContext& ctx = *ctx_;
  const GenConfig& config = internet_->config();

  stats_ = CycleDeltaStats{};
  stats_.cycle = cycle;
  stats_.ases_total = ctx.planes_.size();

  // Roll every AS back to its pristine start-of-month state (undoes flap
  // re-signalling, dynamics, failure reroutes; rewinds label counters and
  // scratch arenas), then mutate forward to the target cycle.
  ctx.restore_pristine();
  ctx.cycle_ = cycle;
  ctx.month_seed_ =
      util::hash_combine(config.seed, 0xC1C7Eull + static_cast<std::uint64_t>(
                                                       cycle));

  // Per-AS deltas are independent; fan out and reduce stats serially.
  std::vector<std::pair<std::uint32_t, AsPlanes*>> ases;
  ases.reserve(ctx.planes_.size());
  for (auto& [asn, planes] : ctx.planes_) ases.emplace_back(asn, planes.get());
  std::vector<CycleDeltaStats> per_as(ases.size());

  util::parallel_for(pool_, ases.size(), [&](std::size_t i) {
    const auto [asn, planes] = ases[i];
    CycleDeltaStats& st = per_as[i];
    const ModeledAs& as = *internet_->modeled(asn);
    const ProfileSnapshot profile =
        profile_at(asn, as.shape, cycle, day_of_month);
    igp::LinkOverlay overlay = internet_->overlay_at(as, asn, cycle);
    const std::uint32_t epoch = internet_->label_epoch_at(asn, cycle);

    const bool overlay_changed = !(overlay == planes->overlay);
    if (overlay_changed) {
      if (overlay.trivial()) {
        planes->igp_cycle.reset();  // back on the time-invariant base IGP
      } else {
        // Incremental SPF from the previous cycle's converged state: only
        // sources whose routing the overlay diff can affect are re-run.
        igp::IgpState::ReconvergeStats rs;
        igp::IgpState next = igp::IgpState::reconverge_delta(
            as.topo, planes->cycle_igp(as), planes->overlay, overlay, pool_,
            &rs);
        planes->igp_cycle = std::move(next);
        st.spf_sources_total += rs.sources_total;
        st.spf_sources_recomputed += rs.sources_recomputed;
      }
      planes->overlay = std::move(overlay);
    }
    for (const bool d : planes->overlay.down) st.links_down += d ? 1 : 0;
    for (const std::uint32_t c : planes->overlay.cost) {
      st.links_cost_changed += c != 0 ? 1 : 0;
    }

    const bool epoch_changed = epoch != planes->label_epoch;
    planes->label_epoch = epoch;

    if (ldp_structural_changed(planes->profile, profile)) {
      internet_->build_as_planes(asn, as, profile, *planes, pool_);
      ++st.ases_rebuilt;
      if (planes->rsvp) st.lsps_signalled += planes->rsvp->lsp_count();
    } else if (overlay_changed || epoch_changed ||
               te_structural_changed(planes->profile, profile)) {
      internet_->build_te_planes(asn, as, profile, *planes);
      ++st.ases_te_rebuilt;
      if (planes->rsvp) st.lsps_signalled += planes->rsvp->lsp_count();
    } else {
      Internet::apply_profile_scalars(profile, *planes);
      planes->profile = profile;
      planes->plane.igp = &planes->cycle_igp(as);
      ++st.ases_restored;
    }
  });

  for (const CycleDeltaStats& st : per_as) {
    stats_.ases_rebuilt += st.ases_rebuilt;
    stats_.ases_te_rebuilt += st.ases_te_rebuilt;
    stats_.ases_restored += st.ases_restored;
    stats_.links_down += st.links_down;
    stats_.links_cost_changed += st.links_cost_changed;
    stats_.spf_sources_total += st.spf_sources_total;
    stats_.spf_sources_recomputed += st.spf_sources_recomputed;
    stats_.lsps_signalled += st.lsps_signalled;
  }

  ctx.apply_flaps(/*sub_index=*/0, config.ecmp_flap_prob);
  day_ = day_of_month;

  obs::registry().counter("evolve.delta_steps").add(1);
  obs::registry().counter("evolve.ases_restored").add(stats_.ases_restored);
  obs::registry()
      .counter("evolve.ases_te_rebuilt")
      .add(stats_.ases_te_rebuilt);
  obs::registry().counter("evolve.ases_rebuilt").add(stats_.ases_rebuilt);
}

}  // namespace mum::gen
