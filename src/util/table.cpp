#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <ostream>
#include <sstream>

namespace mum::util {

namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  bool digit_seen = false;
  for (char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != 'e' &&
               c != ',') {
      return false;
    }
  }
  return digit_seen;
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row, bool align_right) {
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      const std::size_t pad = widths[c] - cell.size();
      os << ' ';
      const bool right = align_right && looks_numeric(cell);
      if (right) os << std::string(pad, ' ') << cell;
      else os << cell << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };

  emit_row(header_, false);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row, true);
  return os.str();
}

std::string TextTable::render_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::fmt(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string TextTable::fmt_int(std::int64_t value) {
  return std::to_string(value);
}

std::string TextTable::fmt_pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.render();
}

}  // namespace mum::util
