#include "util/mmap_file.h"

#include <fstream>
#include <sstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define MUM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace mum::util {

namespace {

// Shared fallback: read the whole file into the owned buffer.
bool read_into(const std::string& path, std::string& buffer) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::ostringstream ss;
  ss << is.rdbuf();
  if (is.bad()) return false;
  buffer = std::move(ss).str();
  return true;
}

}  // namespace

MmapFile::~MmapFile() { reset(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      buffer_(std::move(other.buffer_)) {
  if (!mapped_) data_ = buffer_.data();
  other.data_ = "";
  other.size_ = 0;
  other.mapped_ = false;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    buffer_ = std::move(other.buffer_);
    if (!mapped_) data_ = buffer_.data();
    other.data_ = "";
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

void MmapFile::reset() noexcept {
#if MUM_HAVE_MMAP
  if (mapped_ && size_ > 0) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
  data_ = "";
  size_ = 0;
  mapped_ = false;
  buffer_.clear();
}

std::optional<MmapFile> MmapFile::open_ro(const std::string& path) {
  MmapFile file;
#if MUM_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st{};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      const auto size = static_cast<std::size_t>(st.st_size);
      if (size == 0) {
        ::close(fd);
        return file;  // valid empty view; mmap would reject length 0
      }
      int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
      // Prefault the whole mapping up front: ingest reads every byte once
      // (checksums + column scans), and one batched populate is far cheaper
      // than thousands of individual soft faults along the way.
      flags |= MAP_POPULATE;
#endif
      void* map = ::mmap(nullptr, size, PROT_READ, flags, fd, 0);
      // The mapping keeps the pages alive on its own; the fd can go.
      ::close(fd);
      if (map != MAP_FAILED) {
#ifdef MADV_SEQUENTIAL
        ::madvise(map, size, MADV_SEQUENTIAL);
#endif
        file.data_ = static_cast<const char*>(map);
        file.size_ = size;
        file.mapped_ = true;
        return file;
      }
      // Map failed (unusual filesystem?): fall through to the read path.
    } else {
      ::close(fd);
    }
  }
#endif
  if (!read_into(path, file.buffer_)) return std::nullopt;
  file.data_ = file.buffer_.data();
  file.size_ = file.buffer_.size();
  file.mapped_ = false;
  return file;
}

}  // namespace mum::util
