// Read-only memory-mapped files with a graceful read-into-buffer fallback.
//
// The warts-lite v3 pack format (dataset/pack.h) is designed to be consumed
// in place from a read-only mapping: validation is pointer arithmetic over
// the section table, never a record-by-record parse. On POSIX platforms
// open_ro() mmaps the file (MAP_PRIVATE, PROT_READ, advised sequential);
// elsewhere — or when the map itself fails, e.g. on zero-length files or
// filesystems without mmap — it silently falls back to reading the whole
// file into an owned buffer. Callers never branch on platform: they get a
// stable (data, size) view either way, and `mapped()` only matters to
// benchmarks that want to report which path they measured.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace mum::util {

class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  // Map (or read) `path`; nullopt when the file cannot be opened or read.
  static std::optional<MmapFile> open_ro(const std::string& path);

  const char* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  std::string_view view() const noexcept { return {data_, size_}; }
  // True when the view is a real mapping; false on the buffer fallback.
  bool mapped() const noexcept { return mapped_; }

 private:
  void reset() noexcept;

  const char* data_ = "";  // never null: empty files get a valid empty view
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::string buffer_;  // owns the bytes on the fallback path
};

}  // namespace mum::util
