// Minimal JSON writer (RFC 8259 output only — no parser). Used to export
// LPR reports for external plotting; kept dependency-free and streaming.
//
// Usage:
//   JsonWriter json;
//   json.begin_object();
//   json.key("cycle"); json.value(60);
//   json.key("classes");
//   json.begin_array();
//   json.value("Mono-LSP");
//   json.end_array();
//   json.end_object();
//   std::string text = json.str();
//
// The writer tracks nesting and comma placement; mismatched begin/end are
// the caller's bug and are asserted in debug builds.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mum::util {

// Escape a string for inclusion in a JSON document (quotes not included).
std::string json_escape(std::string_view text);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Object key; must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(bool b);
  JsonWriter& value(std::int64_t n);
  JsonWriter& value(std::uint64_t n);
  JsonWriter& value(std::uint32_t n) {
    return value(static_cast<std::uint64_t>(n));
  }
  JsonWriter& value(int n) { return value(static_cast<std::int64_t>(n)); }
  // Doubles are emitted with enough precision to round-trip; NaN/Inf are
  // not valid JSON and are emitted as null.
  JsonWriter& value(double d);
  JsonWriter& null();

  // Convenience: key + scalar value in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  // Finished document. Asserts all containers are closed.
  const std::string& str() const;

 private:
  void prefix();  // emit comma/spacing as required before a new element

  enum class Frame : std::uint8_t { kObject, kArray };
  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_in_frame_;
  bool pending_key_ = false;
};

}  // namespace mum::util
