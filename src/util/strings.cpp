#include "util/strings.h"

#include <cctype>
#include <limits>

namespace mum::util {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return std::nullopt;
    }
    value = value * 10 + digit;
  }
  return value;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out.append(sep);
    out.append(items[i]);
  }
  return out;
}

}  // namespace mum::util
