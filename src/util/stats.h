// Small statistics toolkit used by the LPR evaluation harness: streaming
// moments (Welford), min/max/avg trackers, integer histograms with PDF
// rendering, and Student-t confidence intervals (the paper reports
// "cumulative average (and confidence interval), over the 60 cycles").
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mum::util {

// Streaming mean/variance accumulator (Welford's algorithm).
class Accumulator {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  // Unbiased sample variance; 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  // Half-width of the 95% Student-t confidence interval on the mean.
  double ci95_halfwidth() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// min / max / avg tracker (Table 2 reports these per year per AS).
class MinMaxAvg {
 public:
  void add(double x) noexcept;
  bool empty() const noexcept { return n_ == 0; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double avg() const noexcept { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  std::size_t count() const noexcept { return n_; }

 private:
  std::size_t n_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Histogram over non-negative integer keys (lengths, widths, symmetry...).
class Histogram {
 public:
  void add(std::int64_t key, std::uint64_t weight = 1);
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t at(std::int64_t key) const noexcept;
  // Probability of `key` (0 when the histogram is empty).
  double pdf(std::int64_t key) const noexcept;
  // Cumulative probability of values <= key.
  double cdf(std::int64_t key) const noexcept;
  std::int64_t min_key() const noexcept;
  std::int64_t max_key() const noexcept;
  // PDF as (key, probability) rows, with every key above `clamp_at` folded
  // into the `clamp_at` bucket (Fig. 8 uses a ">= 10" terminal bucket).
  std::vector<std::pair<std::int64_t, double>> pdf_rows(
      std::int64_t clamp_at = -1) const;
  const std::map<std::int64_t, std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }

 private:
  std::map<std::int64_t, std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

// Two-sided 97.5% Student-t quantile for `dof` degrees of freedom (exact table
// for small dof, asymptotic 1.96 beyond).
double student_t_975(std::size_t dof) noexcept;

// Render a unit-interval value as a fixed-width ASCII bar (for bench output).
std::string ascii_bar(double fraction, std::size_t width = 40);

}  // namespace mum::util
