#include "util/rng.h"

#include <algorithm>

namespace mum::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value) noexcept {
  std::uint64_t state = value;
  return splitmix64(state);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_lineage_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  if (n <= 1) return 0;
  // Rejection sampling on the top bits to stay unbiased.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
  if (hi <= lo) return lo;
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next();  // full range
  return lo + below(span);
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

int Rng::geometric_extra(double p_more, int cap) noexcept {
  int extra = 0;
  while (extra < cap && chance(p_more)) ++extra;
  return extra;
}

Rng Rng::fork(std::uint64_t tag) const noexcept {
  return Rng(hash_combine(seed_lineage_, mix64(tag)));
}

Rng Rng::fork(std::string_view tag) const noexcept {
  return fork(fnv1a(tag));
}

}  // namespace mum::util
