#include "util/json.h"

#include <cmath>
#include <cstdio>

namespace mum::util {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::prefix() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted its comma
  }
  if (!first_in_frame_.empty()) {
    if (!first_in_frame_.back()) out_ += ',';
    first_in_frame_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  prefix();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  first_in_frame_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back() == Frame::kObject);
  out_ += '}';
  stack_.pop_back();
  first_in_frame_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prefix();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  first_in_frame_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back() == Frame::kArray);
  out_ += ']';
  stack_.pop_back();
  first_in_frame_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  assert(!stack_.empty() && stack_.back() == Frame::kObject);
  if (!first_in_frame_.back()) out_ += ',';
  first_in_frame_.back() = false;
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  prefix();
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view(text));
}

JsonWriter& JsonWriter::value(bool b) {
  prefix();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t n) {
  prefix();
  out_ += std::to_string(n);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t n) {
  prefix();
  out_ += std::to_string(n);
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  prefix();
  if (!std::isfinite(d)) {
    out_ += "null";
    return *this;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", d);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::null() {
  prefix();
  out_ += "null";
  return *this;
}

const std::string& JsonWriter::str() const {
  assert(stack_.empty());
  return out_;
}

}  // namespace mum::util
