#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace mum::util {

namespace {

// True while the current thread is executing loop indices; nested
// for_each_index calls detect this and run inline.
thread_local bool tls_in_parallel_region = false;

}  // namespace

unsigned hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

struct ThreadPool::Job {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::size_t workers_done = 0;   // guarded by pool mutex
  std::exception_ptr error;       // first throw; guarded by pool mutex
};

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned total = std::max(1u, threads == 0 ? hardware_threads()
                                                   : threads);
  workers_.reserve(total - 1);
  for (unsigned i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_job_.wait(lock, [&] { return stop_ || job_id_ != seen; });
      if (stop_) return;
      seen = job_id_;
      job = job_;
    }
    run_indices(*job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (++job->workers_done == workers_.size()) cv_done_.notify_all();
    }
  }
}

void ThreadPool::run_indices(Job& job) noexcept {
  tls_in_parallel_region = true;
  for (;;) {
    if (job.failed.load(std::memory_order_relaxed)) break;
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) break;
    try {
      (*job.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!job.error) job.error = std::current_exception();
      job.failed.store(true, std::memory_order_relaxed);
    }
  }
  tls_in_parallel_region = false;
}

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || tls_in_parallel_region) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  Job job;
  job.n = n;
  job.fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++job_id_;
  }
  cv_job_.notify_all();

  run_indices(job);  // the caller is a full participant

  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [&] { return job.workers_done == workers_.size(); });
  job_ = nullptr;
  if (job.error) std::rethrow_exception(job.error);
}

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || pool->size() <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->for_each_index(n, fn);
}

}  // namespace mum::util
