// Deterministic fork/join parallelism for campaign-scale runs.
//
// The pool runs index-parallel loops (`for_each_index`): workers and the
// calling thread claim indices from a shared counter, so scheduling is
// dynamic but results stay deterministic as long as the body writes only to
// per-index state (the pattern every caller in this repo follows: fill slot
// `i`, merge slots in index order afterwards).
//
// There is no work stealing and no task graph — one blocking loop at a time,
// submitted by one owner thread. Nested calls (a loop body that itself calls
// `for_each_index` or `parallel_for`) execute inline on the current thread,
// which keeps the pool deadlock-free and bounds total thread count at the
// configured size.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mum::util {

// Usable hardware threads; at least 1 (hardware_concurrency may report 0).
unsigned hardware_threads() noexcept;

class ThreadPool {
 public:
  // `threads` is the total number of threads that execute a loop, including
  // the calling thread; 0 means one per hardware thread. A pool of size 1
  // spawns no workers and runs everything inline.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Threads participating in a loop (workers + caller).
  unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  // Run fn(i) for every i in [0, n), blocking until all indices complete.
  // The first exception thrown by any invocation is rethrown here (remaining
  // indices are skipped once a throw is seen). Loops must be submitted by
  // one thread at a time; re-entrant calls from inside `fn` run inline.
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& fn);

 private:
  struct Job;

  void worker_loop();
  void run_indices(Job& job) noexcept;

  std::mutex mutex_;
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;            // guarded by mutex_
  std::uint64_t job_id_ = 0;      // guarded by mutex_
  bool stop_ = false;             // guarded by mutex_
};

// Convenience wrapper: runs the loop on `pool`, or inline when `pool` is
// null, single-threaded, or the range is trivial.
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace mum::util
