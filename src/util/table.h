// Plain-text table and CSV rendering for bench output. Every bench binary
// prints the rows/series of the paper table or figure it regenerates; this
// keeps the formatting consistent across all of them.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace mum::util {

// A simple column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  std::size_t rows() const noexcept { return rows_.size(); }

  // Render with column padding; numeric-looking cells are right-aligned.
  std::string render() const;
  // Render as CSV (RFC-4180-ish quoting).
  std::string render_csv() const;

  // Convenience formatting helpers.
  static std::string fmt(double value, int precision = 3);
  static std::string fmt_int(std::int64_t value);
  static std::string fmt_pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& table);

}  // namespace mum::util
