// Small string helpers shared across modules (no locale dependence).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mum::util {

// Split on a single character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view text, char sep);

// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

// Parse an unsigned decimal integer; nullopt on any non-digit or overflow.
std::optional<std::uint64_t> parse_u64(std::string_view text);

// true if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

// Join items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace mum::util
