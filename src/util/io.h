// Fault-injectable I/O seam: every operational file access (checkpoint
// reads/writes, shard persistence, pack mappings) goes through IoEnv, a thin
// wrapper over open/write/fsync/rename/mmap. Normally it is a transparent
// passthrough; with a FailpointPlan installed it injects environment faults
// (EIO, ENOSPC, short writes, torn temp files, stale renames, slow ops) at
// deterministic points, so torn-write recovery, quarantine, retries and
// deadline supervision can be exercised — and reproduced — in tests.
//
// Determinism contract, mirroring chaos::Corruptor: every fault draw derives
// from an RNG stream keyed by (seed, cycle, attempt, op-ordinal). The
// op-ordinal comes from the installed thread-local CycleScope, and a cycle's
// body runs serially on one worker (nested parallel regions run inline), so
// the same campaign config injects the same faults at any thread count.
// Ops issued outside any scope (CLI input loading) key off an explicit or
// caller-provided ordinal.
//
// The crash harness rides the same seam: `kill_at_op = K` counts every IoEnv
// op process-wide and, at the K-th, either terminates the process mid-op
// (`kKill`, exit code kKilledExitCode — the tier-1 torture loop) or leaves
// the op torn and silently fails every later op (`kDead` — in-process
// crash/resume tests). Either way the bytes on disk are exactly what a real
// kill at that op would have left.
//
// Layering: util sits below obs, so no telemetry here — FailpointPlan keeps
// atomic counts and the run layer publishes them (like chaos::publish).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/mmap_file.h"

namespace mum::util::io {

// Exit code of a process killed by the crash harness (`kill_at_op` in kKill
// mode), distinct from every CLI exit code so the torture loop can tell an
// injected kill from a genuine crash.
inline constexpr int kKilledExitCode = 9;

// --- fault taxonomy ------------------------------------------------------

enum class FaultClass : std::uint8_t {
  kEio = 0,      // read/write/rename/map fails outright
  kEnospc,       // write fails, classified as disk-full (degradation path)
  kShortWrite,   // write persists a strict prefix but REPORTS SUCCESS —
                 // caught later by the payload checksum, not at write time
  kTornTemp,     // write persists a strict prefix and fails (a crash between
                 // write and rename leaves exactly this .tmp litter)
  kStaleRename,  // rename reports success but the destination keeps its old
                 // content (metadata never reached the journal)
  kSlow,         // the op takes slow_ms longer (exercises the deadline)
};
inline constexpr std::size_t kFaultClassCount = 6;
const char* to_cstring(FaultClass fault) noexcept;

// Per-class injection rates (probabilities in [0, 1]) plus the crash-harness
// knobs. Parsed from the extended `--chaos io.*=rate` spec.
struct FaultConfig {
  double eio = 0.0;
  double enospc = 0.0;
  double short_write = 0.0;
  double torn_temp = 0.0;
  double stale_rename = 0.0;
  double slow_op = 0.0;
  std::uint32_t slow_ms = 25;  // injected latency per slow op

  enum class KillMode : std::uint8_t { kKill, kDead };
  std::uint64_t kill_at_op = 0;  // 1-based op index; 0 = harness off
  KillMode kill_mode = KillMode::kKill;

  bool any() const noexcept {
    return eio > 0 || enospc > 0 || short_write > 0 || torn_temp > 0 ||
           stale_rename > 0 || slow_op > 0 || kill_at_op > 0;
  }
};

// Copyable snapshot of what a plan actually injected.
struct FaultCounts {
  std::array<std::uint64_t, kFaultClassCount> injected{};
  std::uint64_t ops = 0;  // every IoEnv op that consulted the plan

  std::uint64_t total_injected() const noexcept {
    std::uint64_t total = 0;
    for (const std::uint64_t n : injected) total += n;
    return total;
  }
};

enum class OpKind : std::uint8_t {
  kRead = 0,
  kMap,
  kWrite,
  kRename,
  kRemove,
  kMkdir,
};

// --- failpoint plan ------------------------------------------------------

// Thread-safe: draws are pure functions of the key, counts are atomic.
// One plan per contained run (the runner installs it for the run's scope).
class FailpointPlan {
 public:
  FailpointPlan(const FaultConfig& config, std::uint64_t seed);

  const FaultConfig& config() const noexcept { return config_; }

  // Deterministic fault draw for one op. Returns nullopt for "no fault".
  // Classes that cannot apply to `op` (ENOSPC on a read, say) never fire.
  std::optional<FaultClass> draw(OpKind op, int cycle, int attempt,
                                 std::uint64_t ordinal);

  // Crash harness: count one op; true when this op is the configured kill
  // point (the caller tears the op, then calls die()). Once dead (kDead
  // mode) every subsequent op reports true without side effects.
  bool count_op_and_check_kill() noexcept;
  bool dead() const noexcept {
    return dead_.load(std::memory_order_acquire);
  }
  // kKill: _Exit(kKilledExitCode) right here. kDead: mark the plan dead.
  void die() noexcept;

  void note_injected(FaultClass fault) noexcept;
  FaultCounts counts() const noexcept;

  // Ordinal source for ops issued outside any CycleScope.
  std::uint64_t next_global_ordinal() noexcept {
    return global_ordinal_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  FaultConfig config_;
  std::uint64_t seed_;
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> global_ordinal_{0};
  std::atomic<bool> dead_{false};
  std::array<std::atomic<std::uint64_t>, kFaultClassCount> injected_{};
};

// Process-wide plan installation (no plan = transparent passthrough).
// Install/uninstall from one thread while no IoEnv ops are in flight —
// the runner brackets run_all_contained, tests bracket direct calls.
void set_failpoints(FailpointPlan* plan) noexcept;
FailpointPlan* failpoints() noexcept;

class ScopedFailpoints {
 public:
  explicit ScopedFailpoints(FailpointPlan* plan) noexcept
      : previous_(failpoints()) {
    set_failpoints(plan);
  }
  ~ScopedFailpoints() { set_failpoints(previous_); }
  ScopedFailpoints(const ScopedFailpoints&) = delete;
  ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;

 private:
  FailpointPlan* previous_;
};

// --- per-cycle keying + cooperative deadline ------------------------------

// Thrown by IoEnv ops (and check_deadline) once the enclosing CycleScope's
// deadline has passed. The runner records the cycle as kTimedOut.
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(const std::string& what)
      : std::runtime_error(what) {}
};

// Thread-local scope giving this thread's IoEnv ops their (cycle, attempt)
// fault lineage, a serial op ordinal, and an optional deadline. Nests by
// shadowing: the innermost scope wins until it is destroyed.
class CycleScope {
 public:
  // deadline_ms = 0 means no deadline. The clock starts at construction.
  CycleScope(int cycle, int attempt, std::uint32_t deadline_ms) noexcept;
  ~CycleScope();
  CycleScope(const CycleScope&) = delete;
  CycleScope& operator=(const CycleScope&) = delete;

  int cycle() const noexcept { return cycle_; }
  int attempt() const noexcept { return attempt_; }
  std::uint64_t next_ordinal() noexcept { return ordinal_++; }
  // 0 when no deadline; otherwise a steady-clock ns timestamp.
  std::uint64_t deadline_ns() const noexcept { return deadline_ns_; }

 private:
  int cycle_;
  int attempt_;
  std::uint64_t ordinal_ = 0;
  std::uint64_t deadline_ns_;
  CycleScope* previous_;
};

// The (cycle, attempt) lineage of the current thread's innermost scope, or
// {-1, 0} outside any scope. Captured by components (SnapshotSource) whose
// work may migrate to pool workers that lack the thread-local scope.
struct OpContext {
  int cycle = -1;
  int attempt = 0;
};
OpContext capture_context() noexcept;

// Throw DeadlineExceeded if the current scope's deadline has passed. IoEnv
// ops call this implicitly; the runner also calls it between stages so a
// deadline can fire on compute-only cycles.
void check_deadline();

// --- the I/O environment --------------------------------------------------

// Why the last IoEnv op failed, for policy decisions (ENOSPC drives the
// degradation path). Thread-local, valid after an op returns failure.
enum class Error : std::uint8_t { kNone = 0, kEio, kEnospc, kOther };
const char* to_cstring(Error error) noexcept;

class IoEnv {
 public:
  // Whole-file read. nullopt when missing, unreadable, or EIO-injected.
  std::optional<std::string> read_file(const std::string& path);

  // Read-only mapping (MmapFile::open_ro behind the failpoints). The
  // overload taking an OpContext + ordinal keys its fault draw explicitly —
  // for callers whose ops run on pool workers without a CycleScope.
  std::optional<MmapFile> map_file(const std::string& path);
  std::optional<MmapFile> map_file(const std::string& path,
                                   const OpContext& context,
                                   std::uint64_t ordinal);

  // Whole-file write + fsync. False on failure; a kShortWrite fault returns
  // TRUE with a torn file on disk (that is the point — the checksum layer
  // must catch it downstream).
  bool write_file(const std::string& path, std::string_view bytes);

  // False on failure; a kStaleRename fault returns TRUE having moved
  // nothing.
  bool rename_file(const std::string& from, const std::string& to);

  bool remove_file(const std::string& path);
  bool create_dirs(const std::string& path);

  Error last_error() const noexcept;
};

// The process-wide environment (stateless; all shared state lives in the
// installed FailpointPlan and the thread-local scope/error).
IoEnv& env();

}  // namespace mum::util::io
