// Deterministic pseudo-random number generation for reproducible simulations.
//
// All simulation components draw from mum::util::Rng (xoshiro256** seeded via
// SplitMix64) so that a given seed always yields the same synthetic internet,
// the same probing campaign, and therefore the same LPR output.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string_view>
#include <vector>

namespace mum::util {

// SplitMix64 step; used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

// Stateless 64-bit mix of a value (one SplitMix64 round).
std::uint64_t mix64(std::uint64_t value) noexcept;

// Combine two hashes (order-sensitive).
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept;

// FNV-1a over a string, for stable name-derived seeds.
std::uint64_t fnv1a(std::string_view text) noexcept;

// xoshiro256** — fast, high-quality, 256-bit state PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept;
  // Uniform integer in [0, n) using Lemire's nearly-divisionless method.
  std::uint64_t below(std::uint64_t n) noexcept;
  // Uniform double in [0, 1).
  double uniform01() noexcept;
  // Bernoulli trial with probability p (clamped to [0, 1]).
  bool chance(double p) noexcept;
  // Geometric-ish small integer: minimum + number of successes of repeated
  // trials with probability `p_more` (capped at `cap`). Handy for "how many
  // extra parallel links / LSPs" style draws.
  int geometric_extra(double p_more, int cap) noexcept;

  // Pick a uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) noexcept {
    return items[static_cast<std::size_t>(below(items.size()))];
  }
  template <typename T>
  const T& pick(const std::vector<T>& items) noexcept {
    return items[static_cast<std::size_t>(below(items.size()))];
  }

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[static_cast<std::size_t>(below(i))]);
    }
  }

  // Fork a stream that is independent of this one but fully determined by
  // (this stream's seed lineage, tag). Used to give every AS / cycle / monitor
  // its own stream so that adding probes somewhere never perturbs others.
  Rng fork(std::uint64_t tag) const noexcept;
  Rng fork(std::string_view tag) const noexcept;

 private:
  std::uint64_t state_[4];
  std::uint64_t seed_lineage_;
};

}  // namespace mum::util
