#include "util/arena.h"

#include <algorithm>

namespace mum::util {

void* Arena::allocate_slow(std::size_t bytes, std::size_t align) {
  // Account the tail of the chunk we are abandoning so used() stays an
  // upper bound on live bytes (conservative for the no-growth gate).
  if (chunk_ < chunks_.size()) {
    used_ += chunks_[chunk_].size - offset_;
    ++chunk_;
    offset_ = 0;
  }
  // Reuse retained chunks from earlier rounds when they fit.
  while (chunk_ < chunks_.size()) {
    if (bytes + align <= chunks_[chunk_].size) break;
    used_ += chunks_[chunk_].size;
    ++chunk_;
  }
  if (chunk_ == chunks_.size()) {
    // Geometric chunk growth keeps the chunk count logarithmic in the
    // eventual footprint without over-reserving small arenas.
    std::size_t want = min_chunk_ << std::min<std::size_t>(chunks_.size(), 10);
    want = std::max(want, bytes + align);
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(want), want});
  }
  Chunk& c = chunks_[chunk_];
  std::size_t base = reinterpret_cast<std::uintptr_t>(c.data.get()) % align;
  std::size_t aligned = base ? align - base : 0;
  void* p = c.data.get() + aligned;
  used_ += aligned + bytes;
  offset_ = aligned + bytes;
  return p;
}

}  // namespace mum::util
