#include "util/io.h"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "util/rng.h"

namespace mum::util::io {

namespace {

namespace fs = std::filesystem;

// Seed-lineage tag keeping io-fault streams independent of the Corruptor's
// structural/wire/fail streams and the generator's own lineages.
constexpr std::uint64_t kIoTag = 0xC4A05'10F4ull;

// Per-op count of rate draws, in FaultClass order. The key is hashed per
// class, so adding a class never perturbs the draws of the others.
bool applies(FaultClass fault, OpKind op) noexcept {
  switch (fault) {
    case FaultClass::kEio:
    case FaultClass::kSlow:
      return true;  // any op can fail outright or stall
    case FaultClass::kEnospc:
    case FaultClass::kShortWrite:
    case FaultClass::kTornTemp:
      return op == OpKind::kWrite;
    case FaultClass::kStaleRename:
      return op == OpKind::kRename;
  }
  return false;
}

double rate_of(const FaultConfig& config, FaultClass fault) noexcept {
  switch (fault) {
    case FaultClass::kEio: return config.eio;
    case FaultClass::kEnospc: return config.enospc;
    case FaultClass::kShortWrite: return config.short_write;
    case FaultClass::kTornTemp: return config.torn_temp;
    case FaultClass::kStaleRename: return config.stale_rename;
    case FaultClass::kSlow: return config.slow_op;
  }
  return 0.0;
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

thread_local CycleScope* t_scope = nullptr;
thread_local Error t_error = Error::kNone;

std::atomic<FailpointPlan*> g_plan{nullptr};

// Deterministic key for one (op, cycle, attempt, ordinal) lineage.
std::uint64_t op_key(std::uint64_t seed, OpKind op, int cycle, int attempt,
                     std::uint64_t ordinal) noexcept {
  return hash_combine(
      seed, hash_combine(
                kIoTag,
                hash_combine(
                    static_cast<std::uint64_t>(op),
                    hash_combine(static_cast<std::uint64_t>(
                                     static_cast<std::int64_t>(cycle)),
                                 hash_combine(static_cast<std::uint64_t>(
                                                  attempt),
                                              ordinal)))));
}

}  // namespace

const char* to_cstring(FaultClass fault) noexcept {
  switch (fault) {
    case FaultClass::kEio: return "eio";
    case FaultClass::kEnospc: return "enospc";
    case FaultClass::kShortWrite: return "short_write";
    case FaultClass::kTornTemp: return "torn_temp";
    case FaultClass::kStaleRename: return "stale_rename";
    case FaultClass::kSlow: return "slow";
  }
  return "unknown";
}

const char* to_cstring(Error error) noexcept {
  switch (error) {
    case Error::kNone: return "none";
    case Error::kEio: return "eio";
    case Error::kEnospc: return "enospc";
    case Error::kOther: return "other";
  }
  return "unknown";
}

// --- FailpointPlan --------------------------------------------------------

FailpointPlan::FailpointPlan(const FaultConfig& config, std::uint64_t seed)
    : config_(config), seed_(seed) {}

std::optional<FaultClass> FailpointPlan::draw(OpKind op, int cycle,
                                              int attempt,
                                              std::uint64_t ordinal) {
  const std::uint64_t key = op_key(seed_, op, cycle, attempt, ordinal);
  // One independent stream per class: the draw for a class depends only on
  // its own rate, so tuning one rate never re-rolls the others.
  for (std::size_t f = 0; f < kFaultClassCount; ++f) {
    const FaultClass fault = static_cast<FaultClass>(f);
    const double rate = rate_of(config_, fault);
    if (rate <= 0.0 || !applies(fault, op)) continue;
    Rng rng(hash_combine(key, f));
    if (rng.chance(rate)) return fault;
  }
  return std::nullopt;
}

bool FailpointPlan::count_op_and_check_kill() noexcept {
  if (dead()) return true;
  const std::uint64_t op = ops_.fetch_add(1, std::memory_order_acq_rel) + 1;
  return config_.kill_at_op != 0 && op == config_.kill_at_op;
}

void FailpointPlan::die() noexcept {
  if (config_.kill_mode == FaultConfig::KillMode::kKill) {
    std::_Exit(kKilledExitCode);
  }
  dead_.store(true, std::memory_order_release);
}

void FailpointPlan::note_injected(FaultClass fault) noexcept {
  injected_[static_cast<std::size_t>(fault)].fetch_add(
      1, std::memory_order_relaxed);
}

FaultCounts FailpointPlan::counts() const noexcept {
  FaultCounts out;
  for (std::size_t f = 0; f < kFaultClassCount; ++f) {
    out.injected[f] = injected_[f].load(std::memory_order_relaxed);
  }
  out.ops = ops_.load(std::memory_order_relaxed);
  return out;
}

void set_failpoints(FailpointPlan* plan) noexcept {
  g_plan.store(plan, std::memory_order_release);
}

FailpointPlan* failpoints() noexcept {
  return g_plan.load(std::memory_order_acquire);
}

// --- CycleScope + deadline ------------------------------------------------

CycleScope::CycleScope(int cycle, int attempt,
                       std::uint32_t deadline_ms) noexcept
    : cycle_(cycle),
      attempt_(attempt),
      deadline_ns_(deadline_ms == 0
                       ? 0
                       : now_ns() + std::uint64_t{deadline_ms} * 1'000'000),
      previous_(t_scope) {
  t_scope = this;
}

CycleScope::~CycleScope() { t_scope = previous_; }

OpContext capture_context() noexcept {
  if (t_scope == nullptr) return OpContext{};
  return OpContext{t_scope->cycle(), t_scope->attempt()};
}

void check_deadline() {
  const CycleScope* scope = t_scope;
  if (scope == nullptr || scope->deadline_ns() == 0) return;
  if (now_ns() > scope->deadline_ns()) {
    throw DeadlineExceeded("cycle " + std::to_string(scope->cycle() + 1) +
                           " exceeded its deadline (attempt " +
                           std::to_string(scope->attempt()) + ")");
  }
}

// --- IoEnv ----------------------------------------------------------------

namespace {

// Per-op fault gate: counts the op, applies the kill harness, then draws a
// rate-based fault. kSlow is absorbed here (sleep + deadline re-check);
// anything else is returned for the op to act out. `dead` is set when the
// plan is dead or this op was the kill point in kDead mode — the op must
// fail silently without touching the filesystem.
struct OpGate {
  std::optional<FaultClass> fault;
  std::uint64_t key = 0;  // deterministic tear-length source
  bool dead = false;
  bool kill = false;  // this op is the kill point (tear, then die())
};

OpGate begin_op(OpKind op, const OpContext* context,
                const std::uint64_t* ordinal) {
  check_deadline();
  t_error = Error::kNone;
  OpGate gate;
  FailpointPlan* plan = failpoints();
  if (plan == nullptr) return gate;
  if (plan->dead()) {
    gate.dead = true;
    return gate;
  }
  gate.kill = plan->count_op_and_check_kill();
  OpContext ctx = context != nullptr ? *context : capture_context();
  std::uint64_t ord;
  if (ordinal != nullptr) {
    ord = *ordinal;
  } else if (t_scope != nullptr && context == nullptr) {
    ord = t_scope->next_ordinal();
  } else {
    ord = plan->next_global_ordinal();
  }
  gate.key = op_key(0, op, ctx.cycle, ctx.attempt, ord);
  gate.fault = plan->draw(op, ctx.cycle, ctx.attempt, ord);
  if (gate.fault == FaultClass::kSlow) {
    plan->note_injected(FaultClass::kSlow);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(plan->config().slow_ms));
    gate.fault.reset();
    check_deadline();
  } else if (gate.fault) {
    plan->note_injected(*gate.fault);
  }
  return gate;
}

// Strict prefix of `size` derived from the gate key — what a torn write
// leaves behind (possibly nothing, never the whole payload).
std::size_t torn_prefix(std::uint64_t key, std::size_t size) noexcept {
  if (size <= 1) return 0;
  return static_cast<std::size_t>(mix64(key ^ 0x7EA2) %
                                  static_cast<std::uint64_t>(size));
}

bool write_prefix(const std::string& path, std::string_view bytes,
                  std::size_t prefix) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  os.write(bytes.data(), static_cast<std::streamsize>(prefix));
  os.flush();
  return os.good();
}

}  // namespace

std::optional<std::string> IoEnv::read_file(const std::string& path) {
  OpGate gate = begin_op(OpKind::kRead, nullptr, nullptr);
  if (gate.dead || gate.kill) {
    if (gate.kill) failpoints()->die();  // kKill exits; kDead falls through
    t_error = Error::kEio;
    return std::nullopt;
  }
  if (gate.fault == FaultClass::kEio) {
    t_error = Error::kEio;
    return std::nullopt;
  }
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    std::error_code ec;
    t_error = fs::exists(path, ec) ? Error::kOther : Error::kNone;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  if (is.bad()) {
    t_error = Error::kOther;
    return std::nullopt;
  }
  return std::move(buffer).str();
}

namespace {

std::optional<MmapFile> map_with_gate(const std::string& path, OpGate gate) {
  if (gate.dead || gate.kill) {
    if (gate.kill) failpoints()->die();
    t_error = Error::kEio;
    return std::nullopt;
  }
  if (gate.fault == FaultClass::kEio) {
    t_error = Error::kEio;
    return std::nullopt;
  }
  auto mapped = MmapFile::open_ro(path);
  if (!mapped) t_error = Error::kOther;
  return mapped;
}

}  // namespace

std::optional<MmapFile> IoEnv::map_file(const std::string& path) {
  return map_with_gate(path, begin_op(OpKind::kMap, nullptr, nullptr));
}

std::optional<MmapFile> IoEnv::map_file(const std::string& path,
                                        const OpContext& context,
                                        std::uint64_t ordinal) {
  return map_with_gate(path, begin_op(OpKind::kMap, &context, &ordinal));
}

bool IoEnv::write_file(const std::string& path, std::string_view bytes) {
  OpGate gate = begin_op(OpKind::kWrite, nullptr, nullptr);
  if (gate.dead) {
    t_error = Error::kEio;
    return false;
  }
  if (gate.kill) {
    // A kill mid-write leaves a torn file under the target name — exactly
    // the .tmp litter a real SIGKILL between write and rename produces.
    write_prefix(path, bytes, torn_prefix(gate.key, bytes.size()));
    failpoints()->die();
    t_error = Error::kEio;
    return false;
  }
  if (gate.fault) {
    switch (*gate.fault) {
      case FaultClass::kEio:
        t_error = Error::kEio;
        return false;
      case FaultClass::kEnospc:
        // Disk-full mid-write: a prefix landed, then the write failed.
        write_prefix(path, bytes, torn_prefix(gate.key, bytes.size()));
        t_error = Error::kEnospc;
        return false;
      case FaultClass::kShortWrite:
        // The lying success: a strict prefix persisted but the op reports
        // OK. Only the downstream checksum can catch this.
        write_prefix(path, bytes, torn_prefix(gate.key, bytes.size()));
        t_error = Error::kNone;
        return true;
      case FaultClass::kTornTemp:
        write_prefix(path, bytes, torn_prefix(gate.key, bytes.size()));
        t_error = Error::kEio;
        return false;
      default:
        break;
    }
  }
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    t_error = Error::kOther;
    return false;
  }
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os.flush();
  if (!os.good()) {
    t_error = Error::kOther;
    return false;
  }
  return true;
}

bool IoEnv::rename_file(const std::string& from, const std::string& to) {
  OpGate gate = begin_op(OpKind::kRename, nullptr, nullptr);
  if (gate.dead || gate.kill) {
    if (gate.kill) failpoints()->die();  // killed before the rename landed
    t_error = Error::kEio;
    return false;
  }
  if (gate.fault == FaultClass::kEio) {
    t_error = Error::kEio;
    return false;
  }
  if (gate.fault == FaultClass::kStaleRename) {
    // Reports success, moves nothing: the metadata update never hit the
    // journal. The destination keeps whatever it had.
    t_error = Error::kNone;
    return true;
  }
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    t_error = Error::kOther;
    return false;
  }
  return true;
}

bool IoEnv::remove_file(const std::string& path) {
  OpGate gate = begin_op(OpKind::kRemove, nullptr, nullptr);
  if (gate.dead || gate.kill) {
    if (gate.kill) failpoints()->die();
    t_error = Error::kEio;
    return false;
  }
  if (gate.fault == FaultClass::kEio) {
    t_error = Error::kEio;
    return false;
  }
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) {
    t_error = Error::kOther;
    return false;
  }
  return true;
}

bool IoEnv::create_dirs(const std::string& path) {
  OpGate gate = begin_op(OpKind::kMkdir, nullptr, nullptr);
  if (gate.dead || gate.kill) {
    if (gate.kill) failpoints()->die();
    t_error = Error::kEio;
    return false;
  }
  if (gate.fault == FaultClass::kEio) {
    t_error = Error::kEio;
    return false;
  }
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    t_error = Error::kOther;
    return false;
  }
  return true;
}

Error IoEnv::last_error() const noexcept { return t_error; }

IoEnv& env() {
  static IoEnv instance;
  return instance;
}

}  // namespace mum::util::io
