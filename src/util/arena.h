#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

namespace mum::util {

// Chunked bump allocator for per-cycle object churn (LSP hop vectors,
// scratch work lists). Allocation is a pointer bump; there is no per-object
// free. reset() rewinds to empty while *retaining* every chunk, so a steady
// per-cycle workload reaches a capacity high-water mark once and then stops
// allocating from the OS entirely — the property tests/test_evolve gates.
//
// Lifetime rule: objects live until the owning arena is reset or destroyed.
// Only trivially-destructible element types are allowed (no destructors run).
class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  // Point-in-time view of the allocator, for telemetry export. high_water
  // stabilizing while reset_count keeps climbing is the no-growth signal.
  struct Stats {
    std::size_t capacity_bytes = 0;    // sum of retained chunk sizes
    std::size_t used_bytes = 0;        // handed out since the last reset
    std::size_t high_water_bytes = 0;  // max used() seen across resets
    std::size_t reset_count = 0;       // times reset() ran
    std::size_t chunk_count = 0;
  };

  explicit Arena(std::size_t min_chunk_bytes = kDefaultChunkBytes) noexcept
      : min_chunk_(min_chunk_bytes ? min_chunk_bytes : kDefaultChunkBytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  // Typed SoA column allocation: value-constructed, with an optional
  // alignment override (e.g. 64 for cacheline-aligned hot columns).
  template <class T>
  std::span<T> make_array(std::size_t n, std::size_t align = alignof(T)) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    if (n == 0) return {};
    T* p = static_cast<T*>(allocate(n * sizeof(T), align));
    std::uninitialized_value_construct_n(p, n);
    return {p, n};
  }

  // Same, but left uninitialized — for columns about to be memcpy-filled.
  template <class T>
  std::span<T> make_array_uninit(std::size_t n, std::size_t align = alignof(T)) {
    static_assert(std::is_trivially_destructible_v<T> &&
                  std::is_trivially_copyable_v<T>);
    if (n == 0) return {};
    T* p = static_cast<T*>(allocate(n * sizeof(T), align));
    return {p, n};
  }

  template <class T>
  std::span<T> copy_array(std::span<const T> src) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (src.empty()) return {};
    T* p = static_cast<T*>(allocate(src.size_bytes(), alignof(T)));
    std::memcpy(p, src.data(), src.size_bytes());
    return {p, src.size()};
  }

  // Rewind to empty; all chunks are kept for reuse.
  void reset() noexcept {
    if (used_ > high_water_) high_water_ = used_;
    chunk_ = 0;
    offset_ = 0;
    used_ = 0;
    ++reset_count_;
  }

  // Sum of chunk sizes currently held (never shrinks).
  std::size_t capacity() const noexcept {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }
  // Bytes handed out since the last reset (including alignment padding).
  std::size_t used() const noexcept { return used_; }
  // Max used() observed across resets so far.
  std::size_t high_water() const noexcept {
    return used_ > high_water_ ? used_ : high_water_;
  }
  std::size_t chunk_count() const noexcept { return chunks_.size(); }
  std::size_t reset_count() const noexcept { return reset_count_; }

  Stats stats() const noexcept {
    return Stats{capacity(), used(), high_water(), reset_count(),
                 chunk_count()};
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* allocate_slow(std::size_t bytes, std::size_t align);

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;   // index of the chunk being bumped
  std::size_t offset_ = 0;  // bump cursor within chunks_[chunk_]
  std::size_t min_chunk_;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::size_t reset_count_ = 0;
};

inline void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (chunk_ < chunks_.size()) {
    Chunk& c = chunks_[chunk_];
    const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
    if (aligned + bytes <= c.size) {
      void* p = c.data.get() + aligned;
      used_ += (aligned - offset_) + bytes;
      offset_ = aligned + bytes;
      return p;
    }
  }
  return allocate_slow(bytes, align);
}

// Growable array carved from an Arena. Growth abandons the old block in the
// arena (reclaimed wholesale at the next reset) — the right trade for scratch
// lists that are rebuilt every cycle. Elements must be trivially copyable.
template <class T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T> &&
                std::is_trivially_destructible_v<T>);

 public:
  // Detached: usable only after move-assignment from an attached vector.
  ArenaVector() noexcept = default;

  explicit ArenaVector(Arena& arena, std::size_t initial_capacity = 0) noexcept
      : arena_(&arena), capacity_(initial_capacity) {
    if (capacity_ > 0) data_ = arena_->make_array_uninit<T>(capacity_).data();
  }

  void push_back(const T& v) {
    if (size_ == capacity_) reserve(capacity_ ? capacity_ * 2 : 8);
    data_[size_++] = v;
  }

  // Grow capacity to at least `want` (old block is abandoned in the arena).
  void reserve(std::size_t want) {
    if (want <= capacity_) return;
    T* fresh = arena_->make_array_uninit<T>(want).data();
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    data_ = fresh;
    capacity_ = want;
  }

  // Bulk append (the batch-merge hot path): one growth decision, one memcpy.
  void append(std::span<const T> src) {
    if (src.empty()) return;
    if (size_ + src.size() > capacity_) {
      std::size_t want = capacity_ ? capacity_ * 2 : 8;
      while (want < size_ + src.size()) want *= 2;
      reserve(want);
    }
    std::memcpy(data_ + size_, src.data(), src.size_bytes());
    size_ += src.size();
  }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }
  T& back() noexcept { return data_[size_ - 1]; }
  const T& back() const noexcept { return data_[size_ - 1]; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }
  std::span<const T> span() const noexcept { return {data_, size_}; }
  std::span<T> mutable_span() noexcept { return {data_, size_}; }
  void clear() noexcept { size_ = 0; }  // keeps the current block

 private:
  Arena* arena_ = nullptr;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace mum::util
