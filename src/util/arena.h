#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

namespace mum::util {

// Chunked bump allocator for per-cycle object churn (LSP hop vectors,
// scratch work lists). Allocation is a pointer bump; there is no per-object
// free. reset() rewinds to empty while *retaining* every chunk, so a steady
// per-cycle workload reaches a capacity high-water mark once and then stops
// allocating from the OS entirely — the property tests/test_evolve gates.
//
// Lifetime rule: objects live until the owning arena is reset or destroyed.
// Only trivially-destructible element types are allowed (no destructors run).
class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t min_chunk_bytes = kDefaultChunkBytes) noexcept
      : min_chunk_(min_chunk_bytes ? min_chunk_bytes : kDefaultChunkBytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  template <class T>
  std::span<T> make_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    if (n == 0) return {};
    T* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    std::uninitialized_value_construct_n(p, n);
    return {p, n};
  }

  template <class T>
  std::span<T> copy_array(std::span<const T> src) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (src.empty()) return {};
    T* p = static_cast<T*>(allocate(src.size_bytes(), alignof(T)));
    std::memcpy(p, src.data(), src.size_bytes());
    return {p, src.size()};
  }

  // Rewind to empty; all chunks are kept for reuse.
  void reset() noexcept {
    if (used_ > high_water_) high_water_ = used_;
    chunk_ = 0;
    offset_ = 0;
    used_ = 0;
  }

  // Sum of chunk sizes currently held (never shrinks).
  std::size_t capacity() const noexcept {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }
  // Bytes handed out since the last reset (including alignment padding).
  std::size_t used() const noexcept { return used_; }
  // Max used() observed across resets so far.
  std::size_t high_water() const noexcept {
    return used_ > high_water_ ? used_ : high_water_;
  }
  std::size_t chunk_count() const noexcept { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* allocate_slow(std::size_t bytes, std::size_t align);

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;   // index of the chunk being bumped
  std::size_t offset_ = 0;  // bump cursor within chunks_[chunk_]
  std::size_t min_chunk_;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
};

inline void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (chunk_ < chunks_.size()) {
    Chunk& c = chunks_[chunk_];
    const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
    if (aligned + bytes <= c.size) {
      void* p = c.data.get() + aligned;
      used_ += (aligned - offset_) + bytes;
      offset_ = aligned + bytes;
      return p;
    }
  }
  return allocate_slow(bytes, align);
}

// Growable array carved from an Arena. Growth abandons the old block in the
// arena (reclaimed wholesale at the next reset) — the right trade for scratch
// lists that are rebuilt every cycle. Elements must be trivially copyable.
template <class T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T> &&
                std::is_trivially_destructible_v<T>);

 public:
  explicit ArenaVector(Arena& arena, std::size_t initial_capacity = 0) noexcept
      : arena_(&arena), capacity_(initial_capacity) {
    if (capacity_ > 0) data_ = arena_->make_array<T>(capacity_).data();
  }

  void push_back(const T& v) {
    if (size_ == capacity_) grow();
    data_[size_++] = v;
  }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }
  std::span<const T> span() const noexcept { return {data_, size_}; }
  void clear() noexcept { size_ = 0; }  // keeps the current block

 private:
  void grow() {
    const std::size_t next = capacity_ ? capacity_ * 2 : 8;
    T* fresh = arena_->make_array<T>(next).data();
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    data_ = fresh;
    capacity_ = next;
  }

  Arena* arena_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace mum::util
