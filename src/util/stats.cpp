#include "util/stats.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace mum::util {

void Accumulator::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  const double t = student_t_975(n_ - 1);
  return t * stddev() / std::sqrt(static_cast<double>(n_));
}

void MinMaxAvg::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++n_;
}

void Histogram::add(std::int64_t key, std::uint64_t weight) {
  buckets_[key] += weight;
  total_ += weight;
}

std::uint64_t Histogram::at(std::int64_t key) const noexcept {
  const auto it = buckets_.find(key);
  return it == buckets_.end() ? 0 : it->second;
}

double Histogram::pdf(std::int64_t key) const noexcept {
  if (total_ == 0) return 0.0;
  return static_cast<double>(at(key)) / static_cast<double>(total_);
}

double Histogram::cdf(std::int64_t key) const noexcept {
  if (total_ == 0) return 0.0;
  std::uint64_t below = 0;
  for (const auto& [k, v] : buckets_) {
    if (k > key) break;
    below += v;
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

std::int64_t Histogram::min_key() const noexcept {
  return buckets_.empty() ? 0 : buckets_.begin()->first;
}

std::int64_t Histogram::max_key() const noexcept {
  return buckets_.empty() ? 0 : buckets_.rbegin()->first;
}

std::vector<std::pair<std::int64_t, double>> Histogram::pdf_rows(
    std::int64_t clamp_at) const {
  std::vector<std::pair<std::int64_t, double>> rows;
  if (total_ == 0) return rows;
  std::map<std::int64_t, std::uint64_t> folded;
  for (const auto& [k, v] : buckets_) {
    const std::int64_t key = (clamp_at >= 0 && k > clamp_at) ? clamp_at : k;
    folded[key] += v;
  }
  rows.reserve(folded.size());
  for (const auto& [k, v] : folded) {
    rows.emplace_back(k,
                      static_cast<double>(v) / static_cast<double>(total_));
  }
  return rows;
}

double student_t_975(std::size_t dof) noexcept {
  // Two-sided 95% CI -> 0.975 quantile of Student's t distribution.
  static constexpr std::array<double, 30> kTable = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (dof == 0) return kTable[0];
  if (dof <= kTable.size()) return kTable[dof - 1];
  if (dof <= 40) return 2.021;
  if (dof <= 60) return 2.000;
  if (dof <= 120) return 1.980;
  return 1.960;
}

std::string ascii_bar(double fraction, std::size_t width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto filled =
      static_cast<std::size_t>(std::lround(fraction * static_cast<double>(width)));
  std::string bar(filled, '#');
  bar.append(width - filled, '.');
  return bar;
}

}  // namespace mum::util
